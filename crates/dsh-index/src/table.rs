//! The `L`-repetition asymmetric hash table (the "straightforward
//! adaptation of the near neighbor data structure using LSH" from the
//! proof of Theorem 6.1).
//!
//! `L` pairs `(h_j, g_j)` are sampled from a distance-sensitive family.
//! Every data point `x` is stored in table `j` under key `h_j(x)`; a query
//! `q` probes table `j` under `g_j(q)`. With a symmetric family this is the
//! classical LSH index; with an asymmetric family the probed bucket differs
//! from the stored one — which is the entire point.
//!
//! # Storage layout
//!
//! Each table stores its buckets in a flat CSR-style layout instead of a
//! `HashMap<u64, Vec<u32>>`: a sorted directory of the distinct keys, an
//! offsets array, and one contiguous `Vec<u32>` of point ids grouped by
//! key (increasing id within each bucket — the same order the seed's
//! per-bucket `Vec` push produced). Three dense arrays per table instead
//! of one heap allocation per non-empty bucket: builds touch memory
//! sequentially and probes read one contiguous id range.
//!
//! # Concurrency
//!
//! Table construction fans the `L` repetitions out across
//! [`crate::parallel`] worker threads. All `L` `(h, g)` pairs are sampled
//! *sequentially* from the caller's RNG before any worker starts, so the
//! randomness stream — and therefore the built index — is identical for
//! every thread count. Queries come in two flavors: the classic one-shot
//! [`HashTableIndex::candidates`], and the batched
//! [`HashTableIndex::candidates_batch`] that fans queries out across
//! threads while reusing one generation-stamped [`QueryScratch`] per
//! worker instead of allocating an O(n) `seen` vector per query.

use crate::parallel;
use dsh_core::family::{DshFamily, HasherPair, PointHasher};
use dsh_core::points::{AsRow, PointStore};
use rand::Rng;
use std::sync::Arc;

/// Counters describing the work a query performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of hash tables probed.
    pub tables_probed: usize,
    /// Total bucket entries retrieved (including duplicates across tables).
    pub candidates_retrieved: usize,
    /// Distinct points retrieved.
    pub distinct_candidates: usize,
    /// Retrieved entries that were duplicates of already-seen points — the
    /// quantity Theorem 6.5's output-sensitivity analysis controls.
    pub duplicates: usize,
    /// Number of exact distance/similarity evaluations performed.
    pub distance_computations: usize,
}

impl QueryStats {
    /// Sum the additive counters of `other` into `self`: probes, retrieved
    /// entries, duplicates, and distance computations.
    ///
    /// `distinct_candidates` is deliberately **not** summed. Distinctness
    /// is a property of the whole query, not of one probe: a point
    /// retrieved from two segments (or two tables) is one distinct
    /// candidate, so per-segment partial stats each reporting it as
    /// distinct would double-count it. Callers that merge per-probe
    /// partials — the segmented [`crate::dynamic::DynamicIndex`] query
    /// path and the cross-shard merge in [`crate::shard::ShardedIndex`] —
    /// must set `distinct_candidates` from the deduplicated output once,
    /// after all partials are merged. The regression tests in
    /// `tests/dynamic_parity.rs` and `tests/shard_parity.rs` pin the
    /// summed totals.
    pub fn merge(&mut self, other: &QueryStats) {
        self.tables_probed += other.tables_probed;
        self.candidates_retrieved += other.candidates_retrieved;
        self.duplicates += other.duplicates;
        self.distance_computations += other.distance_computations;
    }
}

/// Flat CSR bucket storage for one table: a sorted `(key, offset)`
/// directory plus one contiguous `Vec<u32>` of point ids grouped by key
/// (increasing within a bucket). Bucket `b` spans
/// `ids[dir[b].1 .. dir[b + 1].1]`; the directory ends with a
/// `(u64::MAX, ids.len())` sentinel so every bucket's end is its
/// successor's start. Fusing key and offset into one entry means a probe
/// that finds its key already holds the bucket bounds — no second array
/// to miss on.
///
/// Lookups are accelerated by a radix prefix table over the top
/// `prefix_bits` bits of the (well-mixed) keys: `prefix_starts[p]` is the
/// number of directory keys with prefix `< p`, so a probe binary-searches
/// only the handful of directory entries sharing the query key's prefix
/// instead of the whole directory.
#[derive(Clone)]
pub(crate) struct CsrBuckets {
    /// Sorted `(key, ids-offset)` pairs, terminated by the sentinel.
    dir: Vec<(u64, u32)>,
    ids: Vec<u32>,
    /// `2^prefix_bits + 1` running counts into the real (non-sentinel)
    /// directory entries.
    prefix_starts: Vec<u32>,
    prefix_bits: u32,
}

/// Cap on the prefix-table size (2^16 entries = 256 KiB of `u32` per
/// table at most, and only when the directory itself is that large).
const MAX_PREFIX_BITS: u32 = 16;

/// Minimum queries per worker in the batched query paths: a worker costs
/// a thread spawn plus one O(n) scratch allocation, which a single cheap
/// query does not amortize.
pub(crate) const MIN_QUERIES_PER_WORKER: usize = 8;

impl CsrBuckets {
    /// Construction from per-point hash keys in one sort-and-sweep pass:
    /// sort `(key, id)` pairs (ids ascending within equal keys — the same
    /// per-bucket order the seed's `HashMap` push produced), then sweep
    /// once to emit the directory, grouped ids, and the prefix counts.
    pub(crate) fn build(hashes: &[u64]) -> Self {
        debug_assert!(hashes.len() < u32::MAX as usize);
        let order: Vec<(u64, u32)> = hashes
            .iter()
            .enumerate()
            .map(|(i, &h)| (h, i as u32))
            .collect();
        Self::build_from_pairs(order)
    }

    /// Construction from explicit `(key, id)` pairs — the compaction path
    /// of the segmented index, where keys are recovered from existing
    /// segment directories instead of re-hashing every row and ids are
    /// global (not positional). Pairs are sorted, so the result is
    /// independent of the input order; ids must be distinct.
    pub(crate) fn build_from_pairs(mut order: Vec<(u64, u32)>) -> Self {
        order.sort_unstable();

        let mut dir: Vec<(u64, u32)> = Vec::new();
        let mut ids = Vec::with_capacity(order.len());
        for &(h, i) in &order {
            if dir.last().map(|e| e.0) != Some(h) {
                dir.push((h, ids.len() as u32));
            }
            ids.push(i);
        }
        let distinct = dir.len();
        dir.push((u64::MAX, ids.len() as u32)); // sentinel

        // Size the prefix table to roughly one directory entry per slot.
        let prefix_bits = (usize::BITS - distinct.leading_zeros()).min(MAX_PREFIX_BITS);
        let mut prefix_starts = vec![0u32; (1usize << prefix_bits) + 1];
        for (b, &(k, _)) in dir[..distinct].iter().enumerate() {
            // Keys are sorted, so the last key of each prefix run wins:
            // prefix_starts[p + 1] = count of directory keys with prefix <= p.
            let p = (Self::prefix_of(k, prefix_bits) + 1) as usize;
            prefix_starts[p] = (b + 1) as u32;
        }
        // Fill prefixes with no keys: running maximum turns the per-run
        // end positions into a complete monotone count array.
        for p in 1..prefix_starts.len() {
            prefix_starts[p] = prefix_starts[p].max(prefix_starts[p - 1]);
        }

        // Dynamic complement to dsh-lint: `bucket`'s binary search and the
        // prefix table are only correct over a strictly ascending directory
        // with monotone offsets. The sentinel entry is excluded — a real
        // u64::MAX key may legitimately share its key value.
        debug_assert!(
            dir[..distinct].windows(2).all(|w| w[0].0 < w[1].0),
            "CSR directory keys must be strictly increasing"
        );
        debug_assert!(
            dir.windows(2).all(|w| w[0].1 <= w[1].1),
            "CSR directory offsets must be non-decreasing"
        );

        CsrBuckets {
            dir,
            ids,
            prefix_starts,
            prefix_bits,
        }
    }

    #[inline]
    fn prefix_of(key: u64, bits: u32) -> u64 {
        if bits == 0 {
            0
        } else {
            key >> (64 - bits)
        }
    }

    /// Total bucket entries (one per indexed id).
    pub(crate) fn num_ids(&self) -> usize {
        self.ids.len()
    }

    /// Iterate over the non-empty buckets in key order, yielding each
    /// distinct key with its grouped ids — the scan the segmented index's
    /// compaction uses to recover `(key, id)` pairs without re-hashing.
    pub(crate) fn entries(&self) -> impl Iterator<Item = (u64, &[u32])> {
        let distinct = self.dir.len() - 1; // drop the sentinel
        self.dir[..distinct]
            .iter()
            .enumerate()
            .map(move |(b, e)| (e.0, &self.ids[e.1 as usize..self.dir[b + 1].1 as usize]))
    }

    /// The bucket for `key` (empty slice when no data point hashed to it).
    // lint: hot
    #[inline]
    pub(crate) fn bucket(&self, key: u64) -> &[u32] {
        let p = Self::prefix_of(key, self.prefix_bits) as usize;
        let lo = self.prefix_starts[p] as usize;
        let hi = self.prefix_starts[p + 1] as usize;
        // The sentinel is never inside [lo, hi): prefix counts cover only
        // real entries, so dir[b + 1] is always a valid end marker.
        match self.dir[lo..hi].binary_search_by(|e| e.0.cmp(&key)) {
            Ok(b) => {
                let b = lo + b;
                &self.ids[self.dir[b].1 as usize..self.dir[b + 1].1 as usize]
            }
            Err(_) => &[],
        }
    }
}

/// One hash table: the sampled data/query hashers and the CSR buckets.
struct Table<P: ?Sized> {
    data_fn: Arc<dyn PointHasher<P>>,
    query_fn: Arc<dyn PointHasher<P>>,
    buckets: CsrBuckets,
}

/// Reusable per-worker query state: a generation-stamped `seen` array.
///
/// Marking a point visited writes the current generation into its stamp
/// slot; starting a new query just bumps the generation, so the O(n)
/// clearing cost of a fresh `vec![false; n]` per query is paid once per
/// 255 queries instead of once per query. Stamps are a single byte so
/// the array is no larger (hence no colder) than the seed's `Vec<bool>`.
pub struct QueryScratch {
    stamps: Vec<u8>,
    generation: u8,
}

impl QueryScratch {
    pub(crate) fn new(n: usize) -> Self {
        QueryScratch {
            stamps: vec![0; n],
            generation: 0,
        }
    }

    /// Start a new query: bump the generation, resetting the stamps on the
    /// (once per 255 queries) wrap-around.
    // lint: hot
    pub(crate) fn begin(&mut self) -> u8 {
        if self.generation == u8::MAX {
            self.stamps.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.generation
    }

    /// Mark point `i` visited in the query of `generation`; returns `true`
    /// on the first visit, `false` for a duplicate.
    #[inline]
    pub(crate) fn visit(&mut self, i: usize, generation: u8) -> bool {
        if self.stamps[i] == generation {
            false
        } else {
            self.stamps[i] = generation;
            true
        }
    }

    /// Number of id slots (the indexed id-space size this scratch serves).
    pub(crate) fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Best-effort prefetch of id `i`'s visited stamp. The bucket walks
    /// hint [`STAMP_AHEAD`] entries ahead so the random-access stamp
    /// probe is already in cache when the walk reaches it. Out-of-range
    /// ids are silently ignored (it is a hint, not a bounds check).
    #[inline]
    pub(crate) fn prefetch(&self, i: usize) {
        dsh_core::kernels::prefetch_read(&self.stamps, i);
    }
}

/// How many id-array entries ahead of the current one the bucket walks
/// prefetch their visited stamp. The stamp probe is the one random
/// access per entry (the id array itself streams sequentially), so this
/// is the distance that hides its latency behind the walk.
pub(crate) const STAMP_AHEAD: usize = 16;

/// How many candidates ahead of the current one the verification loops
/// prefetch the point row. One row is several cache lines, so the
/// distance is shorter than [`STAMP_AHEAD`]: a deeper pipeline of row
/// prefetches would evict its own oldest lines on wide rows.
pub(crate) const ROW_AHEAD: usize = 4;

/// An `L`-repetition DSH hash table over a [`PointStore`].
///
/// `S` is the storage backend: the flat [`dsh_core::points::BitStore`] /
/// [`dsh_core::points::DenseStore`] for contiguous rows, or `Vec<P>` for
/// the classic pointer-per-point layout. Hash functions and queries
/// operate on the store's row type, so the same sampled family builds a
/// bit-identical index over either backend.
pub struct HashTableIndex<S: PointStore> {
    tables: Vec<Table<S::Row>>,
    points: S,
}

impl<S: PointStore> HashTableIndex<S> {
    /// Number of repetitions `L`.
    pub fn repetitions(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrow the row of indexed point `i`.
    pub fn point(&self, i: usize) -> &S::Row {
        self.points.row(i)
    }

    /// The underlying point store.
    pub fn store(&self) -> &S {
        &self.points
    }

    /// A query scratch buffer sized for this index, for use with
    /// [`HashTableIndex::candidates_with`].
    pub fn new_scratch(&self) -> QueryScratch {
        QueryScratch::new(self.points.len())
    }

    /// Build with `l` independently sampled `(h, g)` pairs, fanning table
    /// construction out over [`parallel::available_threads`] workers.
    pub fn build(
        family: &(impl DshFamily<S::Row> + ?Sized),
        points: S,
        l: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        Self::build_with_threads(family, points, l, rng, parallel::available_threads())
    }

    /// Build with an explicit worker-thread count.
    ///
    /// Deterministic in `threads`: all `l` pairs are sampled sequentially
    /// from `rng` before any worker starts, and workers only evaluate the
    /// already-sampled hash functions, so the same `rng` stream yields the
    /// same index on every machine — and the same index for every storage
    /// backend, since hashing reads rows either way.
    pub fn build_with_threads(
        family: &(impl DshFamily<S::Row> + ?Sized),
        points: S,
        l: usize,
        rng: &mut dyn Rng,
        threads: usize,
    ) -> Self {
        // lint: allow(panic) — build-time parameter validation, not on the query path
        assert!(l >= 1, "need at least one repetition");
        // lint: allow(panic) — build-time capacity check, not on the query path
        assert!(
            points.len() < u32::MAX as usize,
            "point count exceeds index capacity"
        );
        let pairs: Vec<HasherPair<S::Row>> = (0..l).map(|_| family.sample(rng)).collect();
        let points_ref = &points;
        let tables = parallel::map_items(&pairs, threads, |_, pair| {
            let hashes: Vec<u64> = (0..points_ref.len())
                .map(|i| pair.data.hash(points_ref.row(i)))
                .collect();
            Table {
                data_fn: Arc::clone(&pair.data),
                query_fn: Arc::clone(&pair.query),
                buckets: CsrBuckets::build(&hashes),
            }
        });
        HashTableIndex { tables, points }
    }

    /// Retrieve query candidates table-by-table, stopping once
    /// `retrieval_limit` raw entries have been pulled (the `8L`
    /// early-termination device from the proof of Theorem 6.1).
    /// Returns distinct candidate indices in retrieval order. The query
    /// may be an owned point, a store row view, or a raw row.
    pub fn candidates<Q>(&self, q: &Q, retrieval_limit: Option<usize>) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.candidates_with(q, retrieval_limit, &mut self.new_scratch())
    }

    /// [`HashTableIndex::candidates`] against a caller-provided scratch
    /// buffer, letting tight query loops skip the per-query O(n)
    /// allocation. The scratch must come from this index's
    /// [`HashTableIndex::new_scratch`] (or one of identical size).
    pub fn candidates_with<Q>(
        &self,
        q: &Q,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.candidates_row(q.as_row(), retrieval_limit, scratch)
    }

    pub(crate) fn candidates_row(
        &self,
        q: &S::Row,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats) {
        // lint: allow(panic) — contract: scratch must come from this index's new_scratch
        assert_eq!(
            scratch.len(),
            self.points.len(),
            "scratch buffer sized for a different index"
        );
        let generation = scratch.begin();
        let limit = retrieval_limit.unwrap_or(usize::MAX);
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        for table in &self.tables {
            stats.tables_probed += 1;
            let key = table.query_fn.hash(q);
            let bucket = table.buckets.bucket(key);
            // Truncate to the retrieval budget up front so the hot loop
            // carries no per-entry limit branch.
            let take = bucket.len().min(limit - stats.candidates_retrieved);
            for (j, &i) in bucket[..take].iter().enumerate() {
                if let Some(&ahead) = bucket.get(j + STAMP_AHEAD) {
                    scratch.prefetch(ahead as usize);
                }
                let i = i as usize;
                if scratch.visit(i, generation) {
                    out.push(i);
                } else {
                    stats.duplicates += 1;
                }
            }
            stats.candidates_retrieved += take;
            if stats.candidates_retrieved >= limit {
                break;
            }
        }
        stats.distinct_candidates = out.len();
        (out, stats)
    }

    /// Run [`HashTableIndex::candidates`] for a batch of queries, fanned
    /// out across [`parallel::available_threads`] workers with one scratch
    /// buffer per worker. The batch may be any store over the same row
    /// type (a `Vec` of owned points or a flat store). Results line up
    /// with `queries` and are identical to a query-at-a-time loop.
    pub fn candidates_batch<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.candidates_batch_with_threads(queries, retrieval_limit, parallel::available_threads())
    }

    /// [`HashTableIndex::candidates_batch`] with an explicit worker-thread
    /// count (the output does not depend on it). The count is capped so
    /// every worker serves at least a handful of queries — one worker per
    /// query would pay a thread spawn and an O(n) scratch allocation per
    /// single query.
    pub fn candidates_batch_with_threads<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
        threads: usize,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        let threads = parallel::capped_threads(queries.len(), threads, MIN_QUERIES_PER_WORKER);
        parallel::map_index_chunks(queries.len(), threads, |range| {
            let mut scratch = self.new_scratch();
            range
                .map(|i| self.candidates_row(queries.row(i), retrieval_limit, &mut scratch))
                .collect()
        })
    }

    /// Whether data point `i` and the query collide in table `j`
    /// (diagnostic helper for tests).
    pub fn collides_in_table<Q>(&self, j: usize, i: usize, q: &Q) -> bool
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let t = &self.tables[j];
        t.data_fn.hash(self.points.row(i)) == t.query_fn.hash(q.as_row())
    }
}

/// A bucket-candidate backend the query front-ends can verify against:
/// the static [`HashTableIndex`], the mutable segmented
/// [`crate::dynamic::DynamicIndex`], or the concurrent sharded
/// [`crate::shard::ShardedIndex`] (and its frozen
/// [`crate::shard::Snapshot`]s).
///
/// Every front-end (`NearNeighborIndex`, `AnnulusIndex`,
/// `RangeReportingIndex`, and the sphere wrappers built on them) is
/// generic over this trait with `HashTableIndex` as the default, so the
/// same verification logic serves a build-once index, one grown online
/// (`build_dynamic`), and one sharded for concurrent serving
/// (`build_sharded`) — and all of them answer queries exactly alike over
/// the same live point set (pinned by `tests/dynamic_parity.rs` and
/// `tests/shard_parity.rs`).
pub trait CandidateBackend: Send + Sync {
    /// The borrowed row type stored points and queries share.
    type Row: ?Sized + 'static;

    /// Number of repetitions `L` (each query probes `L` logical tables).
    fn repetitions(&self) -> usize;

    /// Size of the id space candidate ids are drawn from (for a static
    /// index the point count; for a segmented index all ids ever
    /// inserted, live or not).
    fn indexed_len(&self) -> usize;

    /// Borrow the row of indexed point `i`.
    fn point(&self, i: usize) -> &Self::Row;

    /// Hint that the row of point `i` will be read soon: best-effort
    /// software prefetch of the row, used by the verification loops to
    /// gather candidate rows a few entries ahead of the distance
    /// computations. Default is a no-op; out-of-range ids are ignored.
    #[inline]
    fn prefetch_point(&self, i: usize) {
        let _ = i;
    }

    /// A query scratch buffer sized for this backend.
    fn new_scratch(&self) -> QueryScratch;

    /// Retrieve distinct candidate ids for query row `q`, stopping once
    /// `retrieval_limit` raw bucket entries have been pulled.
    fn candidates_row(
        &self,
        q: &Self::Row,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats);
}

impl<S: PointStore> CandidateBackend for HashTableIndex<S> {
    type Row = S::Row;

    fn repetitions(&self) -> usize {
        HashTableIndex::repetitions(self)
    }

    fn indexed_len(&self) -> usize {
        self.len()
    }

    fn point(&self, i: usize) -> &S::Row {
        HashTableIndex::point(self, i)
    }

    #[inline]
    fn prefetch_point(&self, i: usize) {
        self.points.prefetch_row(i);
    }

    fn new_scratch(&self) -> QueryScratch {
        HashTableIndex::new_scratch(self)
    }

    fn candidates_row(
        &self,
        q: &S::Row,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats) {
        HashTableIndex::candidates_row(self, q, retrieval_limit, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::BitVector;
    use dsh_hamming::{AntiBitSampling, BitSampling};
    use dsh_math::rng::seeded;

    fn dataset(d: usize, n: usize) -> Vec<BitVector> {
        let mut rng = seeded(301);
        (0..n).map(|_| BitVector::random(&mut rng, d)).collect()
    }

    #[test]
    fn symmetric_family_finds_identical_point() {
        let d = 64;
        let points = dataset(d, 50);
        let q = points[17].clone();
        let mut rng = seeded(302);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 8, &mut rng);
        let (cands, stats) = idx.candidates(&q, None);
        assert!(
            cands.contains(&17),
            "identical point must collide somewhere"
        );
        assert_eq!(stats.tables_probed, 8);
        assert_eq!(
            stats.distinct_candidates + stats.duplicates,
            stats.candidates_retrieved
        );
    }

    #[test]
    fn asymmetric_family_excludes_identical_point() {
        // With anti bit-sampling, h(x) != g(x) always: the identical point
        // can never be retrieved.
        let d = 64;
        let points = dataset(d, 50);
        let q = points[3].clone();
        let mut rng = seeded(303);
        let idx = HashTableIndex::build(&AntiBitSampling::new(d), points, 16, &mut rng);
        let (cands, _) = idx.candidates(&q, None);
        assert!(
            !cands.contains(&3),
            "anti family must not retrieve the query itself"
        );
    }

    #[test]
    fn retrieval_limit_stops_early() {
        let d = 16;
        // All points identical => every bucket contains everything.
        let points: Vec<BitVector> = (0..100).map(|_| BitVector::zeros(d)).collect();
        let q = BitVector::zeros(d);
        let mut rng = seeded(304);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 10, &mut rng);
        let (_, stats) = idx.candidates(&q, Some(42));
        assert_eq!(stats.candidates_retrieved, 42);
        let (_, unlimited) = idx.candidates(&q, None);
        assert_eq!(unlimited.candidates_retrieved, 1000);
        assert_eq!(unlimited.distinct_candidates, 100);
        assert_eq!(unlimited.duplicates, 900);
    }

    #[test]
    fn accessors() {
        let d = 8;
        let points = dataset(d, 5);
        let p0 = points[0].clone();
        let mut rng = seeded(305);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 3, &mut rng);
        assert_eq!(idx.repetitions(), 3);
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        assert_eq!(idx.point(0), p0.as_blocks());
    }

    #[test]
    fn csr_buckets_group_ids_by_key_in_insertion_order() {
        let hashes = [7u64, 3, 7, 7, 3, 11, 3];
        let csr = CsrBuckets::build(&hashes);
        assert_eq!(csr.dir, vec![(3, 0), (7, 3), (11, 6), (u64::MAX, 7)]);
        assert_eq!(csr.bucket(3), &[1, 4, 6]);
        assert_eq!(csr.bucket(7), &[0, 2, 3]);
        assert_eq!(csr.bucket(11), &[5]);
        assert_eq!(csr.bucket(5), &[] as &[u32]);
        assert_eq!(csr.ids.len(), hashes.len());
    }

    #[test]
    fn csr_buckets_empty_input() {
        let csr = CsrBuckets::build(&[]);
        assert_eq!(csr.dir, vec![(u64::MAX, 0)]);
        assert_eq!(csr.bucket(0), &[] as &[u32]);
        assert_eq!(csr.bucket(u64::MAX), &[] as &[u32]);
    }

    #[test]
    fn csr_buckets_max_key_is_not_shadowed_by_sentinel() {
        // A real u64::MAX key must stay distinguishable from the sentinel.
        let hashes = [u64::MAX, 0, u64::MAX];
        let csr = CsrBuckets::build(&hashes);
        assert_eq!(csr.bucket(u64::MAX), &[0, 2]);
        assert_eq!(csr.bucket(0), &[1]);
        assert_eq!(csr.bucket(1), &[] as &[u32]);
    }

    #[test]
    fn build_is_deterministic_in_thread_count() {
        let d = 64;
        let points = dataset(d, 120);
        let queries = dataset(d, 10);
        let mut built = Vec::new();
        for threads in [1usize, 2, 4, 16] {
            let mut rng = seeded(306);
            let idx = HashTableIndex::build_with_threads(
                &BitSampling::new(d),
                points.clone(),
                12,
                &mut rng,
                threads,
            );
            let answers: Vec<_> = queries.iter().map(|q| idx.candidates(q, None)).collect();
            built.push(answers);
        }
        for other in &built[1..] {
            assert_eq!(&built[0], other, "thread count changed the built index");
        }
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let d = 64;
        let points = dataset(d, 150);
        let queries = dataset(d, 23);
        let mut rng = seeded(307);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 10, &mut rng);
        for limit in [None, Some(17)] {
            let sequential: Vec<_> = queries.iter().map(|q| idx.candidates(q, limit)).collect();
            for threads in [1usize, 3, 8] {
                let batched = idx.candidates_batch_with_threads(&queries, limit, threads);
                assert_eq!(
                    sequential, batched,
                    "threads = {threads}, limit = {limit:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_preserves_stats_accounting() {
        let d = 32;
        let points = dataset(d, 80);
        let queries = dataset(d, 40);
        let mut rng = seeded(308);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 6, &mut rng);
        let mut scratch = idx.new_scratch();
        for q in &queries {
            let (cands, stats) = idx.candidates_with(q, None, &mut scratch);
            assert_eq!(stats.distinct_candidates, cands.len());
            assert_eq!(
                stats.distinct_candidates + stats.duplicates,
                stats.candidates_retrieved
            );
        }
    }

    #[test]
    fn scratch_generation_wraparound_resets() {
        let mut scratch = QueryScratch::new(4);
        scratch.generation = u8::MAX - 1;
        scratch.stamps = vec![u8::MAX - 1; 4];
        let g = scratch.begin(); // reaches u8::MAX
        assert_eq!(g, u8::MAX);
        let g = scratch.begin(); // wraps: stamps reset, generation restarts
        assert_eq!(g, 1);
        assert!(scratch.stamps.iter().all(|&s| s == 0));
    }

    #[test]
    fn scratch_reuse_correct_across_generation_wrap() {
        // Run far more queries than the u8 generation space on one scratch
        // and check answers stay identical to fresh-scratch queries.
        let d = 32;
        let points = dataset(d, 60);
        let queries = dataset(d, 16);
        let mut rng = seeded(310);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 4, &mut rng);
        let mut scratch = idx.new_scratch();
        for round in 0..40 {
            for q in &queries {
                let with_reuse = idx.candidates_with(q, None, &mut scratch);
                let fresh = idx.candidates(q, None);
                assert_eq!(with_reuse, fresh, "round {round} diverged");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sized for a different index")]
    fn mismatched_scratch_rejected() {
        let d = 16;
        let points = dataset(d, 10);
        let q = points[0].clone();
        let mut rng = seeded(309);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 2, &mut rng);
        let mut wrong = QueryScratch::new(3);
        let _ = idx.candidates_with(&q, None, &mut wrong);
    }
}
