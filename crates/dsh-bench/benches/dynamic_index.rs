//! The mutable segmented index against the static CSR build: insert
//! throughput, query latency as the delta segment fills, and the cost of
//! compaction itself.
//!
//! The questions this answers:
//!
//! * **Insert throughput** — a delta insert costs `L` hash evaluations
//!   plus `HashMap` pushes; how does ingesting `n` points online compare
//!   to one static bulk build of the same `n`?
//! * **Query latency vs delta fill** — the delta's `HashMap` buckets are
//!   slower to probe than a sealed CSR segment; how much latency does a
//!   0% / 10% / 50% delta fill add to a batched query workload, and how
//!   much of it does compaction win back?
//! * **Compaction cost** — the merge is re-hash-free (keys are recovered
//!   from segment directories), so a full compact should cost a sort and
//!   sweep, not a rebuild's hashing bill.
//!
//! Parity is asserted during setup: after compaction the dynamic index
//! must answer the benchmark queries bit-identically to the static CSR
//! build (ids and stats) — a benchmark of a wrong index is worthless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsh_core::combinators::Power;
use dsh_core::points::{BitStore, BitVector};
use dsh_hamming::BitSampling;
use dsh_index::{DynamicIndex, HashTableIndex};
use dsh_math::rng::seeded;
use std::hint::black_box;

const D: usize = 128;
const K: usize = 16;
const L: usize = 16;
const N: usize = 60_000;
const N_QUERIES: usize = 256;

fn family() -> Power<BitSampling> {
    Power::new(BitSampling::new(D), K)
}

fn dataset(seed: u64, n: usize) -> BitStore {
    let mut rng = seeded(seed);
    let mut store = BitStore::with_dim(D);
    for _ in 0..n {
        store.push_random(&mut rng);
    }
    store
}

fn queries(seed: u64) -> Vec<BitVector> {
    let mut rng = seeded(seed);
    (0..N_QUERIES)
        .map(|_| BitVector::random(&mut rng, D))
        .collect()
}

/// Static bulk build vs growing the same point set through the delta
/// segment (insert-only, no compaction), vs insert + final compact.
fn bench_ingest(c: &mut Criterion) {
    let points = dataset(0xBE1, N);
    let mut group = c.benchmark_group("dynamic_ingest");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("static_build", N), |b| {
        b.iter(|| HashTableIndex::build(&family(), points.clone(), L, &mut seeded(0xBE2)));
    });

    group.bench_function(BenchmarkId::new("dynamic_insert", N), |b| {
        b.iter(|| {
            let mut idx =
                DynamicIndex::build(&family(), BitStore::with_dim(D), L, &mut seeded(0xBE2));
            for i in 0..points.len() {
                idx.insert(points.row(i)).unwrap();
            }
            idx
        });
    });

    group.bench_function(BenchmarkId::new("dynamic_insert_compact", N), |b| {
        b.iter(|| {
            let mut idx =
                DynamicIndex::build(&family(), BitStore::with_dim(D), L, &mut seeded(0xBE2));
            for i in 0..points.len() {
                idx.insert(points.row(i)).unwrap();
            }
            idx.compact();
            idx
        });
    });

    group.finish();
}

/// Batched query latency with 0% / 10% / 50% of the points sitting in
/// the delta segment, plus the post-compaction layout.
fn bench_query_vs_delta_fill(c: &mut Criterion) {
    let points = dataset(0xBE3, N);
    let qs = queries(0xBE4);
    let mut group = c.benchmark_group("dynamic_query_delta_fill");
    group.sample_size(10);

    for fill_pct in [0usize, 10, 50] {
        let base = N - N * fill_pct / 100;
        let mut initial = BitStore::with_dim(D);
        for i in 0..base {
            initial.push_row(points.row(i));
        }
        let mut idx = DynamicIndex::build(&family(), initial, L, &mut seeded(0xBE5));
        for i in base..N {
            idx.insert(points.row(i)).unwrap();
        }
        assert_eq!(idx.delta_rows(), N - base);
        group.bench_function(BenchmarkId::new("delta_fill_pct", fill_pct), |b| {
            b.iter(|| black_box(idx.candidates_batch(&qs, Some(8 * L))));
        });
    }

    // Fully compacted layout, with parity asserted against the static
    // CSR build: same candidates, same stats, query for query.
    let mut idx = DynamicIndex::build(&family(), BitStore::with_dim(D), L, &mut seeded(0xBE5));
    for i in 0..N {
        idx.insert(points.row(i)).unwrap();
    }
    idx.compact();
    let static_idx = HashTableIndex::build(&family(), points.clone(), L, &mut seeded(0xBE5));
    assert_eq!(
        static_idx.candidates_batch(&qs, Some(8 * L)),
        idx.candidates_batch(&qs, Some(8 * L)),
        "compacted dynamic index diverged from the static build"
    );
    group.bench_function(BenchmarkId::new("delta_fill_pct", "compacted"), |b| {
        b.iter(|| black_box(idx.candidates_batch(&qs, Some(8 * L))));
    });

    group.finish();
}

/// Cost of one full compaction (2 sealed segments + a half-full delta),
/// isolated from queries.
fn bench_compaction(c: &mut Criterion) {
    let points = dataset(0xBE6, N);
    let mut group = c.benchmark_group("dynamic_compaction");
    group.sample_size(10);

    let mut initial = BitStore::with_dim(D);
    for i in 0..N / 2 {
        initial.push_row(points.row(i));
    }
    let mut idx = DynamicIndex::build(&family(), initial, L, &mut seeded(0xBE7));
    for i in N / 2..3 * N / 4 {
        idx.insert(points.row(i)).unwrap();
    }
    idx.seal();
    for i in 3 * N / 4..N {
        idx.insert(points.row(i)).unwrap();
    }
    for id in (0..N).step_by(16) {
        idx.remove(id).unwrap();
    }

    // Each iteration clones the 3-segment snapshot and compacts the
    // clone; the clone is a flat memcpy of the segment arrays, far below
    // the sort-and-sweep being measured.
    group.bench_function(BenchmarkId::new("compact", N), |b| {
        b.iter(|| {
            let mut snapshot = idx.clone();
            snapshot.compact();
            snapshot
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_query_vs_delta_fill,
    bench_compaction
);
criterion_main!(benches);
