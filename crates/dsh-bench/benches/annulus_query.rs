//! Annulus query vs linear scan (Theorem 6.1's raison d'être), and the
//! ablation from DESIGN.md: the threshold-tuned unimodal family of
//! Theorem 6.2 versus the generic powering route
//! `(1-t)^k1 t^k2` on embedded points.

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_core::combinators::{Concat, Power};
use dsh_core::points::DenseVector;
use dsh_core::{AnalyticCpf, BoxedDshFamily};
use dsh_data::{hamming_data, sphere_data};
use dsh_hamming::{AntiBitSampling, BitSampling};
use dsh_index::annulus::AnnulusIndex;
use dsh_index::linear_scan::LinearScan;
use dsh_math::rng::seeded;
use dsh_sphere::unimodal::{annulus_interval, UnimodalFilterDsh};
use std::hint::black_box;

fn bench_sphere_annulus(c: &mut Criterion) {
    let mut group = c.benchmark_group("annulus_sphere_n2000");
    group.sample_size(20);
    let d = 48;
    let n = 2000;
    let alpha_max = 0.6;
    let fam = UnimodalFilterDsh::new(d, alpha_max, 1.9);
    let l = (1.5 / fam.cpf(alpha_max)).ceil() as usize;
    let (lo, hi) = annulus_interval(alpha_max, 3.0);

    let mut rng = seeded(0xBE3);
    let inst = sphere_data::planted_sphere_instance(&mut rng, n, d, alpha_max);
    let measure = dsh_index::measures::inner_product();
    let idx = AnnulusIndex::build(&fam, measure, (lo, hi), inst.points.clone(), l, &mut rng);
    let scan = LinearScan::new(inst.points, dsh_index::measures::inner_product());

    group.bench_function("dsh_index", |b| {
        b.iter(|| black_box(idx.query(black_box(&inst.query))));
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| black_box(scan.find_in_interval(black_box(&inst.query), lo, hi)));
    });
    group.finish();

    // Batched serving: 64 queries answered one-at-a-time vs through the
    // scratch-reusing, thread-fanning batch path.
    let mut rng = seeded(0xBE5);
    let queries: Vec<DenseVector> = (0..64)
        .map(|_| DenseVector::random_unit(&mut rng, d))
        .collect();
    let mut group = c.benchmark_group("annulus_sphere_batch64");
    group.sample_size(20);
    group.bench_function("query_loop", |b| {
        b.iter(|| {
            let hits = queries.iter().filter(|&q| idx.query(q).0.is_some()).count();
            black_box(hits)
        });
    });
    group.bench_function("query_batch", |b| {
        b.iter(|| {
            let hits = idx
                .query_batch(&queries)
                .iter()
                .filter(|(hit, _)| hit.is_some())
                .count();
            black_box(hits)
        });
    });
    group.finish();
}

fn bench_hamming_powering_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("annulus_hamming_powering");
    group.sample_size(20);
    let d = 256;
    let n = 2000;
    let (k1, k2) = (9usize, 3usize);
    let fam = Concat::new(vec![
        Box::new(Power::new(BitSampling::new(d), k1)) as BoxedDshFamily<[u64]>,
        Box::new(Power::new(AntiBitSampling::new(d), k2)),
    ]);
    let peak = 0.25f64;
    let f_peak = (1.0 - peak).powi(k1 as i32) * peak.powi(k2 as i32);
    let l = (1.5 / f_peak).ceil() as usize;

    let mut rng = seeded(0xBE4);
    let inst = hamming_data::planted_hamming_instance(&mut rng, n, d, 64);
    let measure = dsh_index::measures::relative_hamming(d);
    let idx = AnnulusIndex::build(&fam, measure, (0.15, 0.35), inst.points, l, &mut rng);

    group.bench_function("powered_bitsampling_query", |b| {
        b.iter(|| black_box(idx.query(black_box(&inst.query))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sphere_annulus,
    bench_hamming_powering_ablation
);
criterion_main!(benches);
