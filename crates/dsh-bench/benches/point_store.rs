//! Flat point stores vs `Vec`-of-owned-points — the measurement behind
//! the PR 3 storage rewrite.
//!
//! The baseline reproduces the seed's verification loop verbatim: a
//! `Vec<DenseVector>` / `Vec<BitVector>` (one heap allocation per point),
//! a boxed per-pair measure closure, and the seed's sequential-fold dot
//! product. The contender verifies the same candidate list through the
//! flat stores' blocked batch kernels (`DenseStore::dot_many`,
//! `BitStore::hamming_many`): contiguous rows, no per-candidate pointer
//! chase, four-accumulator kernels. A build group additionally compares
//! `HashTableIndex` construction over both backends (identically seeded,
//! so the indexes are query-for-query identical — asserted below).

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_core::points::{BitStore, BitVector, DenseStore, DenseVector};
use dsh_hamming::BitSampling;
use dsh_index::HashTableIndex;
use dsh_math::rng::seeded;
use std::hint::black_box;

/// The seed's per-pair verification shape: a boxed measure over owned
/// points.
type OwnedMeasure<P> = Box<dyn Fn(&P, &P) -> f64>;

/// Verification workload: `n >= 100k` points, candidate lists of the size
/// a batched query pass hands to the verifier.
const VERIFY_N: usize = 200_000;
const DENSE_D: usize = 64;
const BIT_D: usize = 128;
const N_CANDIDATES: usize = 50_000;

/// Build workload: moderate `n` so a whole build fits a bench iteration.
const BUILD_N: usize = 40_000;
const BUILD_L: usize = 16;

/// The seed's `DenseVector::dot`: one sequential floating-point fold (a
/// single dependency chain), kept here verbatim as the baseline kernel.
fn seed_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn candidate_ids(rng: &mut dyn rand::Rng, n: usize, count: usize) -> Vec<usize> {
    (0..count).map(|_| rng.random_range(0..n)).collect()
}

fn bench_dense_verification(c: &mut Criterion) {
    let mut rng = seeded(0x57B1);
    let points: Vec<DenseVector> = (0..VERIFY_N)
        .map(|_| DenseVector::random_unit(&mut rng, DENSE_D))
        .collect();
    let store = DenseStore::from(points.clone());
    let q = DenseVector::random_unit(&mut rng, DENSE_D);
    let ids = candidate_ids(&mut rng, VERIFY_N, N_CANDIDATES);
    let measure: OwnedMeasure<DenseVector> = Box::new(|x, y| seed_dot(x.as_slice(), y.as_slice()));

    let mut group = c.benchmark_group(format!("dense_verify_n{VERIFY_N}_c{N_CANDIDATES}"));
    group.bench_function("vec_per_point", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &i in &ids {
                acc += measure(&points[i], &q);
            }
            black_box(acc)
        });
    });
    let mut out = Vec::with_capacity(ids.len());
    group.bench_function("store_batched", |b| {
        b.iter(|| {
            store.dot_many(&ids, q.as_slice(), &mut out);
            black_box(out.iter().sum::<f64>())
        });
    });
    group.finish();
}

fn bench_bit_verification(c: &mut Criterion) {
    let mut rng = seeded(0x57B2);
    let points: Vec<BitVector> = (0..VERIFY_N)
        .map(|_| BitVector::random(&mut rng, BIT_D))
        .collect();
    let store = BitStore::from(points.clone());
    let q = BitVector::random(&mut rng, BIT_D);
    let ids = candidate_ids(&mut rng, VERIFY_N, N_CANDIDATES);
    let measure: OwnedMeasure<BitVector> = Box::new(dsh_core::BitVector::relative_hamming);

    let mut group = c.benchmark_group(format!("bit_verify_n{VERIFY_N}_c{N_CANDIDATES}"));
    group.bench_function("vec_per_point", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &i in &ids {
                acc += measure(&points[i], &q);
            }
            black_box(acc)
        });
    });
    let mut out = Vec::with_capacity(ids.len());
    group.bench_function("store_batched", |b| {
        b.iter(|| {
            store.hamming_many(&ids, q.as_blocks(), &mut out);
            black_box(out.iter().sum::<u64>() as f64 / BIT_D as f64)
        });
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut rng = seeded(0x57B3);
    let points: Vec<BitVector> = (0..BUILD_N)
        .map(|_| BitVector::random(&mut rng, BIT_D))
        .collect();
    let store = BitStore::from(points.clone());
    let queries: Vec<BitVector> = (0..32)
        .map(|_| BitVector::random(&mut rng, BIT_D))
        .collect();
    let fam = dsh_core::combinators::Power::new(BitSampling::new(BIT_D), 16);

    // Sanity: identically seeded builds over either backend answer every
    // query identically (the parity half of the acceptance criterion).
    {
        let vec_idx = HashTableIndex::build(&fam, points.clone(), BUILD_L, &mut seeded(0x57B4));
        let store_idx = HashTableIndex::build(&fam, store.clone(), BUILD_L, &mut seeded(0x57B4));
        for q in &queries {
            assert_eq!(vec_idx.candidates(q, None), store_idx.candidates(q, None));
        }
    }

    let mut group = c.benchmark_group(format!("store_index_build_n{BUILD_N}_l{BUILD_L}"));
    group.bench_function("from_vec", |b| {
        b.iter(|| {
            black_box(HashTableIndex::build(
                &fam,
                points.clone(),
                BUILD_L,
                &mut seeded(0x57B5),
            ))
        });
    });
    group.bench_function("from_bit_store", |b| {
        b.iter(|| {
            black_box(HashTableIndex::build(
                &fam,
                store.clone(),
                BUILD_L,
                &mut seeded(0x57B5),
            ))
        });
    });
    group.finish();
}

/// Scalar vs SIMD dispatch tiers on the raw batch kernels: every tier
/// the CPU supports (via [`dsh_core::kernels::implementations`]), timed
/// on one flat-store verification workload. Bit-parity against the
/// scalar oracle is asserted before timing, so a divergent tier fails
/// the bench instead of producing a fast wrong number.
fn bench_kernel_tiers(c: &mut Criterion) {
    use dsh_core::kernels;

    let mut rng = seeded(0x57B6);
    let dense = DenseStore::from(
        (0..VERIFY_N)
            .map(|_| DenseVector::random_unit(&mut rng, DENSE_D))
            .collect::<Vec<_>>(),
    );
    let bits = BitStore::from(
        (0..VERIFY_N)
            .map(|_| BitVector::random(&mut rng, BIT_D))
            .collect::<Vec<_>>(),
    );
    let q = DenseVector::random_unit(&mut rng, DENSE_D);
    let bq = BitVector::random(&mut rng, BIT_D);
    let ids = candidate_ids(&mut rng, VERIFY_N, N_CANDIDATES);

    let mut oracle = Vec::new();
    kernels::scalar::dot_many(dense.as_flat(), DENSE_D, &ids, q.as_slice(), &mut oracle);
    let oracle_bits: Vec<u64> = oracle.iter().map(|x| x.to_bits()).collect();

    let mut group = c.benchmark_group(format!("kernel_tiers_dot_many_c{N_CANDIDATES}"));
    let mut out = Vec::with_capacity(ids.len());
    for tier in kernels::implementations() {
        out.clear();
        (tier.dot_many)(dense.as_flat(), DENSE_D, &ids, q.as_slice(), &mut out);
        assert_eq!(
            out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            oracle_bits,
            "tier {} diverges from the scalar oracle",
            tier.name
        );
        group.bench_function(tier.name, |b| {
            b.iter(|| {
                out.clear();
                (tier.dot_many)(dense.as_flat(), DENSE_D, &ids, q.as_slice(), &mut out);
                black_box(out.last().copied())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group(format!("kernel_tiers_hamming_many_c{N_CANDIDATES}"));
    let mut bout = Vec::with_capacity(ids.len());
    for tier in kernels::implementations() {
        group.bench_function(tier.name, |b| {
            b.iter(|| {
                bout.clear();
                (tier.hamming_many)(
                    bits.as_flat(),
                    bits.blocks_per_row(),
                    &ids,
                    bq.as_blocks(),
                    &mut bout,
                );
                black_box(bout.last().copied())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_verification,
    bench_bit_verification,
    bench_index_build,
    bench_kernel_tiers
);
criterion_main!(benches);
