//! Combinator costs: powering depth, mixture dispatch, and the DESIGN.md
//! ablation comparing the generic `affine` mixture against the
//! direct-coded scaled bit-sampling with the same CPF.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsh_core::combinators::{affine, Power};
use dsh_core::family::DshFamily;
use dsh_core::points::BitVector;
use dsh_hamming::{BitSampling, ScaledBitSampling};
use dsh_math::rng::seeded;
use std::hint::black_box;

fn bench_power_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_eval_depth");
    let d = 128;
    let mut rng = seeded(0xBE5);
    let x = BitVector::random(&mut rng, d);
    for &k in &[1usize, 4, 16, 64] {
        let pair = Power::new(BitSampling::new(d), k).sample(&mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(pair.data.hash(black_box(x.as_blocks()))));
        });
    }
    group.finish();
}

fn bench_affine_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaled_bitsampling_ablation");
    let d = 128;
    let alpha = 0.4;
    let mut rng = seeded(0xBE6);
    let x = BitVector::random(&mut rng, d);

    // Direct implementation: CPF 1 - alpha t.
    let direct = ScaledBitSampling::new(d, alpha);
    // Generic combinator with identical CPF:
    // alpha * (1-t) + (1-alpha) * 1.
    let generic = affine(Box::new(BitSampling::new(d)), alpha, 1.0 - alpha);

    group.bench_function("direct_sample+eval", |b| {
        b.iter(|| {
            let p = direct.sample(&mut rng);
            black_box(p.data.hash(black_box(x.as_blocks())))
        });
    });
    group.bench_function("generic_mixture_sample+eval", |b| {
        b.iter(|| {
            let p = generic.sample(&mut rng);
            black_box(p.data.hash(black_box(x.as_blocks())))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_power_depth, bench_affine_vs_direct);
criterion_main!(benches);
