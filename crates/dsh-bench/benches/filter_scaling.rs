//! The `O(d t^4 e^{t^2/2})` evaluation-cost claim of Theorem 1.2: filter
//! hash evaluation cost as the threshold `t` grows. Expected scanned caps
//! are `~1/Pr[Z >= t]`, so the measured time should track `e^{t^2/2} t`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsh_core::family::DshFamily;
use dsh_core::points::DenseVector;
use dsh_math::rng::seeded;
use dsh_sphere::FilterDshMinus;
use std::hint::black_box;

fn bench_filter_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_eval_vs_t");
    let d = 32;
    let mut rng = seeded(0xBE2);
    let x = DenseVector::random_unit(&mut rng, d);
    for &t in &[1.0f64, 1.5, 2.0, 2.5] {
        let pair = FilterDshMinus::new(d, t).sample(&mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| black_box(pair.data.hash(black_box(x.as_slice()))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter_scaling);
criterion_main!(benches);
