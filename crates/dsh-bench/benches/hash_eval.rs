//! Hash evaluation cost per family: the per-point price of one `(h, g)`
//! evaluation across every construction in the library.

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_core::family::DshFamily;
use dsh_core::points::{BitVector, DenseVector};
use dsh_euclidean::ShiftedEuclideanDsh;
use dsh_hamming::{AntiBitSampling, BitSampling, PolynomialHammingDsh};
use dsh_math::rng::seeded;
use dsh_math::Polynomial;
use dsh_sphere::{CrossPolytopeAnti, FilterDshMinus, SimHash};
use std::hint::black_box;

fn bench_hash_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_eval");
    let d = 64;
    let mut rng = seeded(0xBE1);

    let bits = BitVector::random(&mut rng, d);
    let unit = DenseVector::random_unit(&mut rng, d);

    let bs_pair = BitSampling::new(d).sample(&mut rng);
    group.bench_function("bit_sampling", |b| {
        b.iter(|| black_box(bs_pair.data.hash(black_box(bits.as_blocks()))));
    });

    let anti_pair = AntiBitSampling::new(d).sample(&mut rng);
    group.bench_function("anti_bit_sampling", |b| {
        b.iter(|| black_box(anti_pair.query.hash(black_box(bits.as_blocks()))));
    });

    let poly =
        PolynomialHammingDsh::from_polynomial(d, &Polynomial::new(vec![0.0, 1.0, -1.0])).unwrap();
    let poly_pair = poly.sample(&mut rng);
    group.bench_function("poly_dsh_t(1-t)", |b| {
        b.iter(|| black_box(poly_pair.data.hash(black_box(bits.as_blocks()))));
    });

    let sim_pair = SimHash::new(d).sample(&mut rng);
    group.bench_function("simhash", |b| {
        b.iter(|| black_box(sim_pair.data.hash(black_box(unit.as_slice()))));
    });

    let cp_pair = CrossPolytopeAnti::new(d).sample(&mut rng);
    group.bench_function("cross_polytope_anti", |b| {
        b.iter(|| black_box(cp_pair.query.hash(black_box(unit.as_slice()))));
    });

    let filter_pair = FilterDshMinus::new(d, 1.5).sample(&mut rng);
    group.bench_function("filter_minus_t1.5", |b| {
        b.iter(|| black_box(filter_pair.data.hash(black_box(unit.as_slice()))));
    });

    let e2_pair = ShiftedEuclideanDsh::new(d, 3, 1.0).sample(&mut rng);
    group.bench_function("shifted_euclidean", |b| {
        b.iter(|| black_box(e2_pair.data.hash(black_box(unit.as_slice()))));
    });

    group.finish();
}

criterion_group!(benches, bench_hash_eval);
criterion_main!(benches);
