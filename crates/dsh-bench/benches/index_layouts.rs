//! CSR vs HashMap bucket layouts for the `L`-repetition table — the
//! measurement behind the PR 2 substrate rewrite.
//!
//! The baseline reimplements the seed's exact layout and query loop
//! inline: one `HashMap<u64, Vec<u32>>` per table built with the entry
//! API, sequential table construction, and a fresh `vec![false; n]`
//! `seen` buffer allocated per query. The contender is the library's
//! `HashTableIndex`: flat CSR buckets, parallel build, and the batched
//! query path with generation-stamped scratch reuse. Both sides sample
//! their hash functions from identically seeded RNGs, so they index the
//! same data under the same functions and retrieve the same candidates.

use criterion::{criterion_group, criterion_main, Criterion};
use dsh_core::combinators::Power;
use dsh_core::family::{DshFamily, PointHasher};
use dsh_core::points::{BitStore, BitVector};
use dsh_hamming::BitSampling;
use dsh_index::HashTableIndex;
use dsh_math::rng::seeded;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;

// Concatenation widths follow the theory (`k = ceil(ln n / ln 2)` for
// p2 = 1/2), which keeps buckets short the way a tuned index would.
const D: usize = 128;

// Build workload: moderate n so a whole build fits a bench iteration.
const BUILD_N: usize = 40_000;
const BUILD_L: usize = 24;
const BUILD_K: usize = 16;

// Query workload: production-scale n, built once outside the timer. At
// this size the seed's per-query `vec![false; n]` is a 500 KB
// allocate-zero-free cycle per query — the pathology the CSR scratch
// removes.
const QUERY_N: usize = 500_000;
const QUERY_L: usize = 16;
const QUERY_K: usize = 19;
const N_QUERIES: usize = 256;

/// One seed-layout table: the query hasher and its HashMap buckets.
type HashMapTable = (Arc<dyn PointHasher<[u64]>>, HashMap<u64, Vec<u32>>);

/// The seed's table layout, verbatim: HashMap buckets, sequential build.
struct HashMapIndex {
    tables: Vec<HashMapTable>,
    n: usize,
}

impl HashMapIndex {
    /// Same owned-`Vec` contract as the seed's `HashTableIndex::build`, so
    /// both sides of the build benchmark pay the identical clone cost.
    #[allow(clippy::needless_pass_by_value)] // owned-Vec contract is the point
    fn build(
        family: &impl DshFamily<[u64]>,
        points: Vec<BitVector>,
        l: usize,
        rng: &mut dyn rand::Rng,
    ) -> Self {
        let tables = (0..l)
            .map(|_| {
                let pair = family.sample(rng);
                let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
                for (i, p) in points.iter().enumerate() {
                    buckets
                        .entry(pair.data.hash(p.as_blocks()))
                        .or_default()
                        .push(i as u32);
                }
                (pair.query, buckets)
            })
            .collect();
        HashMapIndex {
            tables,
            n: points.len(),
        }
    }

    /// The seed's query loop, verbatim: fresh O(n) `seen` allocation plus
    /// per-entry stats/limit bookkeeping, exactly as the seed's
    /// `HashTableIndex::candidates` did it.
    fn candidates(&self, q: &BitVector, retrieval_limit: Option<usize>) -> (Vec<usize>, usize) {
        let mut retrieved = 0usize;
        let mut duplicates = 0usize;
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        'tables: for (query_fn, buckets) in &self.tables {
            let key = query_fn.hash(q.as_blocks());
            if let Some(bucket) = buckets.get(&key) {
                for &i in bucket {
                    retrieved += 1;
                    let i = i as usize;
                    if seen[i] {
                        duplicates += 1;
                    } else {
                        seen[i] = true;
                        out.push(i);
                    }
                    if let Some(limit) = retrieval_limit {
                        if retrieved >= limit {
                            break 'tables;
                        }
                    }
                }
            }
        }
        let _ = duplicates;
        (out, retrieved)
    }
}

fn workload(n: usize, k: usize) -> (Vec<BitVector>, Vec<BitVector>, Power<BitSampling>) {
    let mut rng = seeded(0x1D7);
    let points: Vec<BitVector> = (0..n).map(|_| BitVector::random(&mut rng, D)).collect();
    // Half in-dataset queries (duplicate-heavy buckets), half fresh.
    let queries: Vec<BitVector> = points[..N_QUERIES / 2]
        .iter()
        .cloned()
        .chain((0..N_QUERIES / 2).map(|_| BitVector::random(&mut rng, D)))
        .collect();
    (points, queries, Power::new(BitSampling::new(D), k))
}

fn bench_index_layouts(c: &mut Criterion) {
    // --- Build throughput -------------------------------------------------
    let (points, queries, fam) = workload(BUILD_N, BUILD_K);

    // Sanity: identically seeded builds retrieve identical candidates.
    {
        let baseline = HashMapIndex::build(&fam, points.clone(), BUILD_L, &mut seeded(0x1D8));
        let csr = HashTableIndex::build(&fam, points.clone(), BUILD_L, &mut seeded(0x1D8));
        for q in &queries {
            let (cands, retrieved) = baseline.candidates(q, None);
            let (csr_cands, csr_stats) = csr.candidates(q, None);
            assert_eq!(cands, csr_cands);
            assert_eq!(retrieved, csr_stats.candidates_retrieved);
        }
    }

    let mut group = c.benchmark_group(format!("index_build_n{BUILD_N}"));
    group.bench_function("hashmap_seq", |b| {
        b.iter(|| {
            black_box(HashMapIndex::build(
                &fam,
                points.clone(),
                BUILD_L,
                &mut seeded(0x1D9),
            ));
        });
    });
    group.bench_function("csr_parallel", |b| {
        b.iter(|| {
            black_box(HashTableIndex::build(
                &fam,
                points.clone(),
                BUILD_L,
                &mut seeded(0x1D9),
            ));
        });
    });
    group.finish();
    drop(points);

    // --- Batched query throughput ----------------------------------------
    let (points, queries, fam) = workload(QUERY_N, QUERY_K);
    let baseline = HashMapIndex::build(&fam, points.clone(), QUERY_L, &mut seeded(0x1DA));
    let csr = HashTableIndex::build(&fam, points, QUERY_L, &mut seeded(0x1DA));
    for q in queries.iter().take(8) {
        assert_eq!(baseline.candidates(q, None).0, csr.candidates(q, None).0);
    }

    let mut group = c.benchmark_group(format!("index_query_n{QUERY_N}_batch{N_QUERIES}"));
    // Both sides serve the whole batch and hold all its results, as a
    // batch-serving caller would.
    group.bench_function("hashmap_per_query_alloc", |b| {
        b.iter(|| {
            let results: Vec<(Vec<usize>, usize)> = queries
                .iter()
                .map(|q| baseline.candidates(q, None))
                .collect();
            black_box(results.iter().map(|(cands, _)| cands.len()).sum::<usize>())
        });
    });
    group.bench_function("csr_batched", |b| {
        b.iter(|| {
            let results = csr.candidates_batch(&queries, None);
            black_box(results.iter().map(|(cands, _)| cands.len()).sum::<usize>())
        });
    });
    group.finish();

    // --- Candidate verification across dispatch tiers ---------------------
    // The batched walk's output feeds the Hamming verification gather;
    // time that gather under every kernel tier the CPU supports. The
    // candidate lists are collected once outside the timer, so the group
    // isolates the kernel (and its internal row prefetch) from the walk.
    let store = BitStore::from(
        csr.store()
            .iter()
            .map(|p| BitVector::from_blocks(p.as_blocks().to_vec(), D))
            .collect::<Vec<_>>(),
    );
    let candidate_lists: Vec<Vec<usize>> =
        queries.iter().map(|q| csr.candidates(q, None).0).collect();
    let mut group = c.benchmark_group(format!("index_verify_tiers_n{QUERY_N}_batch{N_QUERIES}"));
    let mut out = Vec::new();
    for tier in dsh_core::kernels::implementations() {
        group.bench_function(tier.name, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (q, cands) in queries.iter().zip(&candidate_lists) {
                    out.clear();
                    (tier.hamming_many)(
                        store.as_flat(),
                        store.blocks_per_row(),
                        cands,
                        q.as_blocks(),
                        &mut out,
                    );
                    acc += out.iter().sum::<u64>();
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_layouts);
criterion_main!(benches);
