//! The kernel-approximation remark after Theorem 5.1: hashing through the
//! exact `O(d^k)` Valiant embedding versus the `O(k(d + m log m))`
//! TensorSketch approximation, as the input dimension grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsh_core::family::DshFamily;
use dsh_core::points::DenseVector;
use dsh_math::rng::seeded;
use dsh_math::Polynomial;
use dsh_sphere::tensor_sketch::SketchedPolynomialSphereDsh;
use dsh_sphere::PolynomialSphereDsh;
use std::hint::black_box;

fn bench_exact_vs_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("valiant_vs_tensorsketch_t3");
    group.sample_size(20);
    let p = Polynomial::new(vec![0.0, 0.0, 0.0, 1.0]); // t^3: D = d^3
    for &d in &[8usize, 16, 32] {
        let mut rng = seeded(0xBE7);
        let x = DenseVector::random_unit(&mut rng, d);

        let exact = PolynomialSphereDsh::new(d, &p);
        let exact_pair = exact.sample(&mut rng);
        group.bench_with_input(BenchmarkId::new("exact", d), &d, |b, _| {
            b.iter(|| black_box(exact_pair.data.hash(black_box(x.as_slice()))));
        });

        let sketched = SketchedPolynomialSphereDsh::new(d, &p, 1024);
        let sketch_pair = sketched.sample(&mut rng);
        group.bench_with_input(BenchmarkId::new("tensorsketch_m1024", d), &d, |b, _| {
            b.iter(|| black_box(sketch_pair.data.hash(black_box(x.as_slice()))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_sketch);
criterion_main!(benches);
