//! The sharded serving layer against the unsharded mutable index: what
//! does snapshot publication cost, and what does it buy?
//!
//! The questions this answers:
//!
//! * **Batched query latency vs shard count** — the cross-shard k-way
//!   bucket merge answers bit-identically to the unsharded index; how
//!   much per-query overhead do 1/2/4/8 shards add on a compacted
//!   layout?
//! * **Ingest under concurrent readers** — every write publishes a fresh
//!   immutable state (copy-on-write of the written shard's delta), so
//!   readers never block. How much slower is publishing ingest than the
//!   unsharded in-place ingest, and how many snapshot queries do readers
//!   sustain while it runs?
//! * **Compaction publication pause** — compaction rebuilds segments on
//!   worker threads off the publication path and swaps one `Arc` at the
//!   end; snapshot acquisition must stay O(1) while it runs.
//!
//! Parity is asserted during setup, like `dynamic_index.rs`: a benchmark
//! of a wrong index is worthless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsh_core::combinators::Power;
use dsh_core::points::{BitStore, BitVector};
use dsh_hamming::BitSampling;
use dsh_index::{DynamicIndex, ShardedIndex};
use dsh_math::rng::seeded;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

const D: usize = 128;
const K: usize = 16;
const L: usize = 12;
const N: usize = 40_000;
const N_INGEST: usize = 20_000;
const N_QUERIES: usize = 256;
const SEAL_EVERY: usize = 256;

fn family() -> Power<BitSampling> {
    Power::new(BitSampling::new(D), K)
}

fn dataset(seed: u64, n: usize) -> BitStore {
    let mut rng = seeded(seed);
    let mut store = BitStore::with_dim(D);
    for _ in 0..n {
        store.push_random(&mut rng);
    }
    store
}

fn queries(seed: u64) -> Vec<BitVector> {
    let mut rng = seeded(seed);
    (0..N_QUERIES)
        .map(|_| BitVector::random(&mut rng, D))
        .collect()
}

/// Batched query latency on a compacted layout, by shard count, with the
/// unsharded dynamic index as the baseline — parity asserted first.
fn bench_query_vs_shard_count(c: &mut Criterion) {
    let points = dataset(0x5B1, N);
    let qs = queries(0x5B2);
    let mut group = c.benchmark_group("sharded_query");
    group.sample_size(10);

    let mut dynamic = DynamicIndex::build(&family(), points.clone(), L, &mut seeded(0x5B3));
    dynamic.compact();
    let want = dynamic.candidates_batch(&qs, Some(8 * L));
    group.bench_function(BenchmarkId::new("shards", "unsharded"), |b| {
        b.iter(|| black_box(dynamic.candidates_batch(&qs, Some(8 * L))));
    });

    for shards in [1usize, 2, 4, 8] {
        let mut idx = ShardedIndex::build(&family(), points.clone(), L, shards, &mut seeded(0x5B3));
        idx.compact();
        assert_eq!(
            want,
            idx.candidates_batch(&qs, Some(8 * L)),
            "sharded index ({shards} shards) diverged from the unsharded build"
        );
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| black_box(idx.candidates_batch(&qs, Some(8 * L))));
        });
    }

    group.finish();
}

/// Publishing ingest (every insert produces a fresh immutable state)
/// against the unsharded in-place ingest, alone and with reader threads
/// hammering snapshots throughout.
fn bench_ingest(c: &mut Criterion) {
    let points = dataset(0x5B4, N_INGEST);
    let qs: Vec<BitVector> = queries(0x5B5)[..32].to_vec();
    let mut group = c.benchmark_group("sharded_ingest");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("dynamic_insert", N_INGEST), |b| {
        b.iter(|| {
            let mut idx =
                DynamicIndex::build(&family(), BitStore::with_dim(D), L, &mut seeded(0x5B6));
            for i in 0..points.len() {
                idx.insert(points.row(i)).unwrap();
                if (i + 1) % SEAL_EVERY == 0 {
                    idx.seal();
                }
            }
            idx
        });
    });

    group.bench_function(BenchmarkId::new("sharded_insert", N_INGEST), |b| {
        b.iter(|| {
            let mut idx =
                ShardedIndex::build(&family(), BitStore::with_dim(D), L, 4, &mut seeded(0x5B6));
            for i in 0..points.len() {
                idx.insert(points.row(i)).unwrap();
                if (i + 1) % SEAL_EVERY == 0 {
                    idx.seal();
                }
            }
            idx
        });
    });

    // Same ingest with 3 reader threads taking snapshots and querying
    // until the writer finishes. The queries-served count is the
    // concurrent-read throughput (printed once, outside the timing loop).
    let served_total = AtomicUsize::new(0);
    let iters = AtomicUsize::new(0);
    group.bench_function(
        BenchmarkId::new("sharded_insert_3_readers", N_INGEST),
        |b| {
            b.iter(|| {
                let mut idx =
                    ShardedIndex::build(&family(), BitStore::with_dim(D), L, 4, &mut seeded(0x5B6));
                let handle = idx.reader_handle();
                let done = AtomicBool::new(false);
                let served = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    let (done, served, qs) = (&done, &served, &qs);
                    for _ in 0..3 {
                        let handle = handle.clone();
                        scope.spawn(move || {
                            while !done.load(Ordering::Acquire) {
                                let snapshot = handle.snapshot();
                                let answers =
                                    snapshot.candidates_batch_with_threads(qs, Some(8 * L), 1);
                                served.fetch_add(answers.len(), Ordering::Relaxed);
                                black_box(answers);
                            }
                        });
                    }
                    for i in 0..points.len() {
                        idx.insert(points.row(i)).unwrap();
                        if (i + 1) % SEAL_EVERY == 0 {
                            idx.seal();
                        }
                    }
                    done.store(true, Ordering::Release);
                });
                served_total.fetch_add(served.load(Ordering::Relaxed), Ordering::Relaxed);
                iters.fetch_add(1, Ordering::Relaxed);
                idx
            });
        },
    );
    let iters = iters.load(Ordering::Relaxed).max(1);
    println!(
        "sharded_ingest/concurrent_reads: ~{} snapshot queries served per ingest of {N_INGEST} points",
        served_total.load(Ordering::Relaxed) / iters
    );

    group.finish();
}

/// Snapshot acquisition while a compaction storm runs in the background:
/// the publication pause readers actually observe.
fn bench_compaction_publication_pause(c: &mut Criterion) {
    let points = dataset(0x5B7, N);
    let mut group = c.benchmark_group("sharded_compaction");
    group.sample_size(10);

    // A multi-segment index with tombstones: the compaction workload.
    let build = || {
        let mut idx =
            ShardedIndex::build(&family(), BitStore::with_dim(D), L, 4, &mut seeded(0x5B8));
        for i in 0..N {
            idx.insert(points.row(i)).unwrap();
            if (i + 1) % (N / 3) == 0 {
                idx.seal();
            }
        }
        for id in (0..N).step_by(16) {
            idx.remove(id).unwrap();
        }
        idx
    };

    let mut idx = build();
    group.bench_function(BenchmarkId::new("compact", N), |b| {
        // Re-compacting a compacted index re-merges every segment entry:
        // each iteration measures a full merge-and-publish.
        b.iter(|| idx.compact());
    });

    let mut idx = build();
    let handle = idx.reader_handle();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let done = &done;
        scope.spawn(move || {
            while !done.load(Ordering::Acquire) {
                idx.compact();
            }
        });
        group.bench_function(BenchmarkId::new("snapshot_during_compact", N), |b| {
            b.iter(|| black_box(handle.snapshot().epoch()));
        });
        done.store(true, Ordering::Release);
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_query_vs_shard_count,
    bench_ingest,
    bench_compaction_publication_pause
);
criterion_main!(benches);
