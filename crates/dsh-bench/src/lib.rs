//! Shared infrastructure for the experiment binaries (`src/bin/fig*.rs`,
//! `src/bin/tab*.rs`) that regenerate every figure and quantitative claim
//! of the paper, and for the criterion microbenchmarks in `benches/`.
//!
//! Each binary prints an aligned table to stdout and writes the same rows
//! as CSV into `results/` (created on demand) so `EXPERIMENTS.md` can
//! reference stable artifacts.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;

/// An experiment report: a titled table with typed-ish string cells.
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        // lint: allow(panic) — bench report builder, never on a serving path; flagged via a conservative name-match edge
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a free-text note printed under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: String = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect::<Vec<_>>()
            .join("  ");
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "{}", "-".repeat(line.len()));
        for row in &self.rows {
            let line: String = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ");
            let _ = writeln!(out, "{line}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Print to stdout and write `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_ok() {
            let mut csv = String::new();
            let _ = writeln!(csv, "{}", self.headers.join(","));
            for row in &self.rows {
                let _ = writeln!(csv, "{}", row.join(","));
            }
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[wrote results/{name}.csv]");
            }
        }
    }
}

/// Format a float with `p` significant decimals.
pub fn fmt(v: f64, p: usize) -> String {
    format!("{v:.p$}")
}

/// Format a float in scientific notation.
pub fn fmt_sci(v: f64) -> String {
    format!("{v:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("demo", &["x", "value"]);
        r.row(vec!["1".into(), "10.5".into()]);
        r.row(vec!["200".into(), "3".into()]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: hello"));
        // Right-aligned columns: "200" should appear directly under "  1".
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut r = Report::new("demo", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_sci(0.000123), "1.230e-4");
    }
}
