//! Figure 1: the collision probability function of the asymmetric
//! Euclidean family (equation (2)) for `k = 3`, `w = 1`.
//!
//! The paper's plot shows a unimodal CPF over distance 0..10 with maximum
//! around 0.08, a steep left flank and a shallow right flank. This binary
//! regenerates the curve both from the closed form and by Monte-Carlo
//! estimation.

use dsh_bench::{fmt, Report};
use dsh_core::estimate::CpfEstimator;
use dsh_core::points::DenseVector;
use dsh_core::AnalyticCpf;
use dsh_euclidean::ShiftedEuclideanDsh;
use dsh_math::rng::seeded;

fn main() {
    let d = 6;
    let fam = ShiftedEuclideanDsh::new(d, 3, 1.0);
    let mut rng = seeded(0xF161);

    let distances: Vec<f64> = (1..=50).map(|i| 0.2 * i as f64).collect();
    let pairs: Vec<(DenseVector, DenseVector)> = distances
        .iter()
        .map(|&delta| {
            let x = DenseVector::gaussian(&mut rng, d);
            let dir = DenseVector::random_unit(&mut rng, d);
            (x.clone(), x.add(&dir.scaled(delta)))
        })
        .collect();
    let ests = CpfEstimator::new(40_000, 0xF162).estimate_curve(&fam, &pairs);

    let mut report = Report::new(
        "Figure 1 — CPF of (h,g) = (floor((<a,x>+b)/w), floor((<a,y>+b)/w)+k), k=3, w=1",
        &["distance", "analytic f", "monte-carlo", "ci_lo", "ci_hi"],
    );
    let mut peak = (0.0, 0.0);
    for (delta, est) in distances.iter().zip(&ests) {
        let f = fam.cpf(*delta);
        if f > peak.1 {
            peak = (*delta, f);
        }
        report.row(vec![
            fmt(*delta, 1),
            fmt(f, 5),
            fmt(est.estimate, 5),
            fmt(est.lo, 5),
            fmt(est.hi, 5),
        ]);
    }
    report.note(format!(
        "peak f = {:.4} at distance {:.2} (paper's plot: ~0.08 shortly before 3)",
        peak.1, peak.0
    ));
    report.note("shape check: unimodal, steep left of the peak, shallow right of it");
    report.emit("fig1_euclidean_cpf");
}
