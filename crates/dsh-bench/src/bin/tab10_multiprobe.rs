//! Experiment T10 — the §6.3 list-of-points step construction.
//!
//! A linear-space, data-independent scheme (multiprobe bit-sampling)
//! whose CPF is `Theta(1/L)` flat over the close range: `h` stores each
//! point in exactly one bucket, `g` probes one of `L` buckets. The table
//! shows the binomial-CDF step shape, its flatness over the target range,
//! and its decay — plus the output sensitivity when plugged into range
//! reporting.

use dsh_bench::{fmt, fmt_sci, Report};
use dsh_core::estimate::CpfEstimator;
use dsh_core::points::BitVector;
use dsh_core::AnalyticCpf;
use dsh_data::hamming_data;
use dsh_hamming::MultiProbeBitSampling;
use dsh_index::RangeReportingIndex;
use dsh_math::rng::seeded;

fn main() {
    let d = 256;

    let mut report = Report::new(
        "T10 — §6.3 multiprobe step CPF: f(t) = BinomCDF(w; k, t) / L",
        &["k", "w", "L", "t", "analytic f", "measured", "f(0)/f(t)"],
    );
    for &(k, w) in &[(16usize, 2usize), (16, 4), (20, 5)] {
        let fam = MultiProbeBitSampling::new(d, k, w);
        let mut rng = seeded(0x7AB101);
        let x = BitVector::random(&mut rng, d);
        for &dist in &[0usize, 13, 26, 64, 128] {
            let mut y = x.clone();
            for i in 0..dist {
                y.flip(i);
            }
            let t = dist as f64 / d as f64;
            let est = CpfEstimator::new(60_000, 0x7AB102 + dist as u64).estimate_pair(&fam, &x, &y);
            report.row(vec![
                k.to_string(),
                w.to_string(),
                fam.probe_count().to_string(),
                fmt(t, 3),
                fmt_sci(fam.cpf(t)),
                fmt_sci(est.estimate),
                fmt(fam.flatness(t), 2),
            ]);
        }
    }
    report.note("f(0) = 1/L exactly (linear space: one stored bucket per point)");
    report.note("flat over t <~ w/(2k), then binomial-tail decay — the step of §6.3");

    // Range reporting with the multiprobe family: output sensitivity.
    let mut rr = Report::new(
        "T10b — range reporting with the multiprobe step family",
        &["|S*|", "L reps", "recall", "reported", "dups/result/L"],
    );
    let k = 16;
    let w = 3;
    let fam = MultiProbeBitSampling::new(d, k, w);
    let f_r = fam.cpf(0.05);
    let l = (2.5 / f_r).ceil() as usize;
    for &close in &[20usize, 100] {
        let mut rng = seeded(0x7AB103 + close as u64);
        let q = BitVector::random(&mut rng, d);
        let mut points = Vec::new();
        let mut truth = Vec::new();
        for i in 0..close {
            points.push(hamming_data::point_at_distance(&mut rng, &q, 13));
            truth.push(i);
        }
        points.extend(hamming_data::uniform_hamming(&mut rng, 400, d));
        let measure = dsh_index::measures::relative_hamming(d);
        let idx = RangeReportingIndex::build(&fam, measure, 0.05, 0.2, points, l, &mut rng);
        let recall = idx.recall(&q, &truth);
        let (out, stats) = idx.query(&q);
        rr.row(vec![
            close.to_string(),
            l.to_string(),
            fmt(recall, 2),
            out.len().to_string(),
            fmt(
                stats.duplicates as f64 / (out.len().max(1) as f64 * l as f64),
                4,
            ),
        ]);
    }
    rr.note("duplication per result per repetition stays near f_max = f(0) = 1/L — optimal output sensitivity");
    report.emit("tab10_multiprobe");
    rr.emit("tab10b_multiprobe_reporting");
}
