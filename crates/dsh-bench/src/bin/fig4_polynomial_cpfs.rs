//! Figure 4: collision probability functions `sim(P(alpha))` obtained from
//! Theorem 5.1 with SimHash, for the paper's seven example polynomials
//! (including normalized Chebyshev polynomials).

use dsh_bench::{fmt, Report};
use dsh_core::estimate::CpfEstimator;
use dsh_core::AnalyticCpf;
use dsh_math::rng::seeded;
use dsh_sphere::geometry::pair_with_inner_product;
use dsh_sphere::valiant::{figure4_polynomials, PolynomialSphereDsh};

fn main() {
    let d = 5;
    let alphas: Vec<f64> = (0..=20).map(|i| -1.0 + 0.1 * i as f64).collect();

    let mut report = Report::new(
        "Figure 4 — CPFs sim(P(alpha)) from Theorem 5.1 (SimHash over Valiant embeddings)",
        &[
            "polynomial",
            "alpha",
            "analytic",
            "monte-carlo",
            "ci_lo",
            "ci_hi",
        ],
    );

    for (name, p) in figure4_polynomials() {
        let fam = PolynomialSphereDsh::new(d, &p);
        let mut rng = seeded(0xF1641);
        // Interior alphas only for the Monte-Carlo pairs (exact +-1 make
        // the orthogonal-complement construction degenerate but are fine
        // analytically).
        let pairs: Vec<_> = alphas
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a.clamp(-0.999, 0.999)))
            .collect();
        let ests = CpfEstimator::new(3000, 0xF1642).estimate_curve(&fam, &pairs);
        for (alpha, est) in alphas.iter().zip(&ests) {
            report.row(vec![
                name.to_string(),
                fmt(*alpha, 2),
                fmt(fam.cpf(*alpha), 4),
                fmt(est.estimate, 4),
                fmt(est.lo, 4),
                fmt(est.hi, 4),
            ]);
        }
    }
    report.note("left pane of the figure: t^2, -t^2, (-t^3+t^2-t)/3; right pane: Chebyshev family");
    report.note("-t^2 peaks at alpha = 0: the hyperplane-query CPF of §6.1");
    report.emit("fig4_polynomial_cpfs");
}
