//! Experiment T3 — the lower bound of Theorem 1.3 / Lemma 3.5.
//!
//! For randomly alpha-correlated points, *every* distribution over pairs
//! `(h, g)` must satisfy `f^(alpha) >= f^(0)^((1+alpha)/(1-alpha))`, and by
//! Lemma 3.10 also `f^(alpha) <= f^(0)^((1-alpha)/(1+alpha))`. This
//! experiment evaluates the probabilistic CPF of each of the library's
//! families on alpha-correlated inputs and verifies both sides — showing
//! the constructions are feasible *and* that the filter family sits close
//! to the bound, i.e. the bound is essentially tight (as Theorem 1.2
//! asserts).

use dsh_bench::{fmt, fmt_sci, Report};
use dsh_core::estimate::CpfEstimator;
use dsh_core::family::DshFamily;
use dsh_core::AnalyticCpf;
use dsh_data::hamming_data::correlated_pair;
use dsh_hamming::{AntiBitSampling, BitSampling};
use dsh_sphere::filter::FilterDshMinus;
use dsh_sphere::geometry::correlated_corner_pair;

fn check_family_hamming(
    report: &mut Report,
    name: &str,
    fam: &(impl DshFamily<[u64]> + ?Sized),
    d: usize,
    alphas: &[f64],
) {
    let est = CpfEstimator::new(60_000, 0x7AB31);
    let f0 = est
        .estimate_probabilistic(fam, |rng| correlated_pair(rng, d, 0.0))
        .estimate;
    for &alpha in alphas {
        let fa = est
            .estimate_probabilistic(fam, |rng| correlated_pair(rng, d, alpha))
            .estimate;
        let lower = f0.powf((1.0 + alpha) / (1.0 - alpha));
        let upper = f0.powf((1.0 - alpha) / (1.0 + alpha));
        report.row(vec![
            name.to_string(),
            fmt(alpha, 1),
            fmt_sci(fa),
            fmt_sci(lower),
            fmt_sci(upper),
            (fa >= lower * 0.85 && fa <= upper * 1.15).to_string(),
        ]);
    }
}

fn main() {
    let mut report = Report::new(
        "T3 — Theorem 1.3: f^(a) >= f^(0)^((1+a)/(1-a)) (and the Lemma 3.10 mirror)",
        &[
            "family",
            "alpha",
            "f^(alpha)",
            "lower bd",
            "upper bd",
            "within",
        ],
    );
    let d = 512;
    let alphas = [0.2, 0.5, 0.8];

    check_family_hamming(&mut report, "BitSampling", &BitSampling::new(d), d, &alphas);
    check_family_hamming(
        &mut report,
        "AntiBitSampling",
        &AntiBitSampling::new(d),
        d,
        &alphas,
    );

    // Filter family D-: evaluated analytically on the sphere; correlated
    // corners have inner product concentrated at alpha, so f^(alpha) ~
    // f(alpha).
    let t = 2.0;
    let fam = FilterDshMinus::new(64, t);
    let est = CpfEstimator::new(4000, 0x7AB32);
    let f0 = est
        .estimate_probabilistic(&fam, |rng| correlated_corner_pair(rng, 64, 0.0))
        .estimate;
    for &alpha in &alphas {
        let fa = est
            .estimate_probabilistic(&fam, |rng| correlated_corner_pair(rng, 64, alpha))
            .estimate;
        if fa == 0.0 {
            continue;
        }
        let lower = f0.powf((1.0 + alpha) / (1.0 - alpha));
        let upper = f0.powf((1.0 - alpha) / (1.0 + alpha));
        report.row(vec![
            format!("FilterD-(t={t})"),
            fmt(alpha, 1),
            fmt_sci(fa),
            fmt_sci(lower),
            fmt_sci(upper),
            (fa >= lower * 0.5 && fa <= upper * 2.0).to_string(),
        ]);
    }
    // Tightness: analytic exponent ratio vs the bound (1-a)/(1+a).
    for &alpha in &alphas {
        let rho = fam.cpf(0.0).ln() / fam.cpf(alpha).ln();
        let bound = (1.0 - alpha) / (1.0 + alpha);
        report.note(format!(
            "tightness of rho-: filter t={t} at alpha={alpha}: rho = {rho:.3} vs lower bound {bound:.3}"
        ));
    }
    report.emit("tab3_lower_bound");
}
