//! Figure 2: composing several unimodal CPFs into a "step function" CPF
//! with the mixture combinator (Lemma 1.4(b)).
//!
//! The paper's left pane shows unimodal CPFs of roughly equal height with
//! peaks at increasing distances; the right pane shows their mixture:
//! approximately flat over the covered range and decaying beyond it. We
//! use the equation-(2) family with shift `k = 1` and increasing bucket
//! widths `w = 1..6`, whose peaks sit near `0.9 w` with height ~0.22
//! each. Step CPFs are the engine behind spherical range reporting
//! (Theorem 6.5) and the privacy protocol (§6.4).

use dsh_bench::{fmt, Report};
use dsh_core::combinators::Mixture;
use dsh_core::estimate::CpfEstimator;
use dsh_core::points::DenseVector;
use dsh_core::{AnalyticCpf, BoxedDshFamily};
use dsh_euclidean::ShiftedEuclideanDsh;
use dsh_math::rng::seeded;

fn main() {
    let d = 6;
    let widths: Vec<f64> = (1..=6).map(|j| j as f64).collect();
    let components: Vec<ShiftedEuclideanDsh> = widths
        .iter()
        .map(|&w| ShiftedEuclideanDsh::new(d, 1, w))
        .collect();
    let weight = 1.0 / components.len() as f64;
    let mixture = Mixture::new(
        components
            .iter()
            .map(|c| (weight, Box::new(*c) as BoxedDshFamily<[f64]>))
            .collect(),
    );
    let mix_cpf =
        |delta: f64| -> f64 { components.iter().map(|c| c.cpf(delta)).sum::<f64>() * weight };

    let mut rng = seeded(0xF1621);
    let distances: Vec<f64> = (1..=60).map(|i| 0.33 * i as f64).collect();
    let pairs: Vec<(DenseVector, DenseVector)> = distances
        .iter()
        .map(|&delta| {
            let x = DenseVector::gaussian(&mut rng, d);
            let dir = DenseVector::random_unit(&mut rng, d);
            (x.clone(), x.add(&dir.scaled(delta)))
        })
        .collect();
    let ests = CpfEstimator::new(40_000, 0xF1622).estimate_curve(&mixture, &pairs);

    let mut headers: Vec<String> = vec!["distance".into()];
    headers.extend(widths.iter().map(|w| format!("f_w={w}")));
    headers.push("mixture".into());
    headers.push("monte-carlo".into());
    let header_refs: Vec<&str> = headers.iter().map(std::string::String::as_str).collect();
    let mut report = Report::new(
        "Figure 2 — unimodal CPFs (left) mixed into a step-function CPF (right)",
        &header_refs,
    );
    for (delta, est) in distances.iter().zip(&ests) {
        let mut row = vec![fmt(*delta, 2)];
        row.extend(components.iter().map(|c| fmt(c.cpf(*delta), 4)));
        row.push(fmt(mix_cpf(*delta), 4));
        row.push(fmt(est.estimate, 4));
        report.row(row);
    }

    // Flatness over the covered plateau vs decay beyond it.
    let plateau: Vec<f64> = (0..=40).map(|i| 1.0 + 4.5 * i as f64 / 40.0).collect();
    let fmax = plateau.iter().map(|&x| mix_cpf(x)).fold(0.0f64, f64::max);
    let fmin = plateau
        .iter()
        .map(|&x| mix_cpf(x))
        .fold(f64::INFINITY, f64::min);
    report.note(format!(
        "plateau [1.0, 5.5]: f in [{:.3}, {:.3}], ratio {:.2} (step flatness; Thm 6.5's overhead factor)",
        fmin,
        fmax,
        fmax / fmin
    ));
    report.note(format!(
        "decay beyond the plateau: f(5.5) = {:.3} -> f(10) = {:.3} -> f(20) = {:.3}",
        mix_cpf(5.5),
        mix_cpf(10.0),
        mix_cpf(20.0)
    ));
    report.emit("fig2_step_cpf");
}
