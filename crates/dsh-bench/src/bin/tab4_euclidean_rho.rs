//! Experiment T4 — Theorem 4.1: the shifted Euclidean family achieves
//! `rho_minus = (1/c^2)(1 + O(1/k))` with `w = sqrt(2 pi)/(2c)`.
//!
//! Sweeps the shift `k` for several gaps `c` and reports `rho_minus c^2`,
//! which must converge to 1 like `1 + O(1/k)`.

use dsh_bench::{fmt, Report};
use dsh_euclidean::ShiftedEuclideanDsh;

fn main() {
    let mut report = Report::new(
        "T4 — Theorem 4.1: rho_minus * c^2 -> 1 as k grows (w = sqrt(2pi)/(2c))",
        &["c", "k", "w", "rho_minus", "rho*c^2", "(rho*c^2 - 1)*k"],
    );
    for &c in &[1.5f64, 2.0, 3.0] {
        let w = ShiftedEuclideanDsh::suggested_width(c);
        for &k in &[2u32, 4, 8, 16, 32, 64] {
            let fam = ShiftedEuclideanDsh::new(4, k, w);
            let rho = fam.rho_minus(1.0, c);
            report.row(vec![
                fmt(c, 1),
                k.to_string(),
                fmt(w, 4),
                fmt(rho, 5),
                fmt(rho * c * c, 4),
                fmt((rho * c * c - 1.0) * k as f64, 3),
            ]);
        }
    }
    report.note("last column roughly constant => error decays like O(1/k), as Theorem 4.1 states");
    report.note("compare: anti bit-sampling only achieves rho_minus = Omega(1/ln c) (see T9)");
    report.emit("tab4_euclidean_rho");
}
