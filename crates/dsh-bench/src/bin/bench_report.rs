//! `bench-report`: the machine-readable kernel perf trajectory.
//!
//! Times the runtime-dispatched kernel layer (`dsh_core::kernels`) on
//! the workloads the serving path actually runs — dense `dot_many` /
//! `euclidean_many` verification, packed Hamming verification, and the
//! batched CSR candidate-collection walk — then re-executes itself in a
//! child process with `DSH_FORCE_SCALAR=1` to time the identical
//! workloads on the scalar tier with prefetch disabled. Dispatch is
//! resolved once per process, so the subprocess is the only honest way
//! to compare both paths end to end (facades, prefetch gating and all).
//!
//! Parity is asserted, not assumed: every bench folds its outputs into
//! an FNV checksum, and the parent fails if any child checksum differs —
//! the kernels' bit-identity contract, enforced inside the bench run.
//!
//! After the kernel trajectory, the report times the **write path**: the
//! publishing sharded ingest (`ShardedIndex` + `WriteBatch` group
//! commits) against the in-place unsharded ingest (`DynamicIndex`,
//! per-op) over the identical point stream and seal cadence, for a range
//! of group-commit sizes. Query parity (candidates + `QueryStats`,
//! FNV-folded) between both indexes is asserted for every batch size, and
//! the epoch count must equal one per batch plus one per seal — the
//! group-commit publication contract, enforced inside the bench run.
//!
//! Modes:
//! - default: full-size workloads; writes `BENCH_kernels.json` (schema
//!   `bench name -> {scalar_ns, simd_ns, speedup, n, dim}`) and
//!   `BENCH_ingest.json` (schema `ingest_batch_B -> {publishing_ns,
//!   inplace_ns, ratio, n, shards, epochs}`) at the repo root
//!   (nanoseconds are best-of-reps for the whole workload).
//! - `--smoke`: small workloads, no files written — a fast CI tripwire
//!   for dispatch-path divergence and write-path parity.

use dsh_core::combinators::Power;
use dsh_core::kernels;
use dsh_core::points::{BitStore, BitVector, DenseStore, DenseVector};
use dsh_hamming::BitSampling;
use dsh_index::{DynamicIndex, HashTableIndex, QueryStats, ShardedIndex};
use dsh_math::rng::seeded;
use dsh_sphere::SimHash;
use std::time::Instant;

/// Marker the parent sets (alongside `DSH_FORCE_SCALAR=1`) so the child
/// invocation reports raw measurements instead of recursing.
const CHILD_MARKER: &str = "DSH_BENCH_REPORT_CHILD";

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv(acc: u64, x: u64) -> u64 {
    x.to_le_bytes().iter().fold(acc, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// One measured workload: best-of-reps wall time plus the output
/// checksum that pins bit-parity across dispatch paths.
struct Sample {
    name: &'static str,
    ns: u128,
    checksum: u64,
    n: usize,
    dim: usize,
}

/// Workload sizes; `--smoke` shrinks everything so the whole report runs
/// in seconds while still crossing every kernel path.
struct Sizes {
    verify_n: usize,
    candidates: usize,
    dense_d: usize,
    bit_d: usize,
    csr_n: usize,
    csr_queries: usize,
    reps: usize,
}

const FULL: Sizes = Sizes {
    verify_n: 200_000,
    candidates: 50_000,
    dense_d: 64,
    bit_d: 256,
    csr_n: 500_000,
    csr_queries: 256,
    reps: 15,
};

const SMOKE: Sizes = Sizes {
    verify_n: 20_000,
    candidates: 5_000,
    dense_d: 64,
    bit_d: 256,
    csr_n: 10_000,
    csr_queries: 32,
    reps: 5,
};

/// Best-of-`reps` wall time of `f`, with one untimed warmup call.
fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> (u128, R) {
    let mut result = f();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        result = f();
        best = best.min(t.elapsed().as_nanos());
    }
    (best, result)
}

fn run_benches(s: &Sizes) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut rng = seeded(0xB37C);

    // Dense verification: the candidate-row gather the ANN verify loop
    // performs, through the DenseStore facade (dispatch + prefetch).
    let mut store = DenseStore::with_dim(s.dense_d);
    for _ in 0..s.verify_n {
        let p = DenseVector::random_unit(&mut rng, s.dense_d);
        store.push(p.as_slice());
    }
    let q = DenseVector::random_unit(&mut rng, s.dense_d);
    let ids: Vec<usize> = (0..s.candidates)
        .map(|_| rng.random_range(0..s.verify_n))
        .collect();
    let mut out = Vec::with_capacity(ids.len());
    let (ns, ()) = time(s.reps, || {
        store.dot_many(&ids, q.as_slice(), &mut out);
    });
    samples.push(Sample {
        name: "dense_dot_many_verify",
        ns,
        checksum: out.iter().fold(FNV_SEED, |h, x| fnv(h, x.to_bits())),
        n: s.candidates,
        dim: s.dense_d,
    });
    let (ns, ()) = time(s.reps, || {
        store.euclidean_many(&ids, q.as_slice(), &mut out);
    });
    samples.push(Sample {
        name: "dense_euclidean_many_verify",
        ns,
        checksum: out.iter().fold(FNV_SEED, |h, x| fnv(h, x.to_bits())),
        n: s.candidates,
        dim: s.dense_d,
    });

    // Packed Hamming verification through the BitStore facade.
    let mut bits = BitStore::with_dim(s.bit_d);
    for _ in 0..s.verify_n {
        bits.push_random(&mut rng);
    }
    let bq = BitVector::random(&mut rng, s.bit_d);
    let mut bout = Vec::with_capacity(ids.len());
    let (ns, ()) = time(s.reps, || {
        bits.hamming_many(&ids, bq.as_blocks(), &mut bout);
    });
    samples.push(Sample {
        name: "bit_hamming_many_verify",
        ns,
        checksum: bout.iter().fold(FNV_SEED, |h, &x| fnv(h, x)),
        n: s.candidates,
        dim: s.bit_d,
    });

    // Batched CSR candidate collection: for each query, the bucket /
    // id-array walk with visited-stamp dedup (stamp prefetch on the
    // SIMD tiers) feeding the dense candidate-row verification gather
    // (`euclidean_many`, row prefetch) — the per-query candidate pass
    // the ANN serving path runs. The walk-only phase is also reported
    // separately so the trajectory separates dedup-walk gains from
    // verification gains.
    let mut build_rng = seeded(0xB37D);
    let mut csr_store = DenseStore::with_dim(s.dense_d);
    for _ in 0..s.csr_n {
        let p = DenseVector::random_unit(&mut build_rng, s.dense_d);
        csr_store.push(p.as_slice());
    }
    let fam = Power::new(SimHash::new(s.dense_d), 12);
    let idx = HashTableIndex::build(&fam, csr_store, 8, &mut build_rng);
    let queries: Vec<DenseVector> = (0..s.csr_queries)
        .map(|_| DenseVector::random_unit(&mut build_rng, s.dense_d))
        .collect();
    let mut scratch = idx.new_scratch();
    let mut dists = Vec::new();
    let (ns, checksum) = time(s.reps, || {
        let mut h = FNV_SEED;
        for q in &queries {
            let (cands, _) = idx.candidates_with(q, None, &mut scratch);
            idx.store().euclidean_many(&cands, q.as_slice(), &mut dists);
            h = cands.iter().fold(h, |h, &i| fnv(h, i as u64));
            h = dists.iter().fold(h, |h, x| fnv(h, x.to_bits()));
        }
        h
    });
    samples.push(Sample {
        name: "csr_candidate_collect_batch",
        ns,
        checksum,
        n: s.csr_n,
        dim: s.dense_d,
    });
    let (ns, checksum) = time(s.reps, || {
        let mut h = FNV_SEED;
        for q in &queries {
            let (cands, stats) = idx.candidates_with(q, None, &mut scratch);
            h = cands.iter().fold(h, |h, &i| fnv(h, i as u64));
            h = fnv(h, stats.candidates_retrieved as u64);
        }
        h
    });
    samples.push(Sample {
        name: "csr_bucket_walk_batch",
        ns,
        checksum,
        n: s.csr_n,
        dim: s.dense_d,
    });

    samples
}

/// Group-commit sizes the ingest benchmark sweeps. Every size divides
/// the seal cadence, so seal boundaries land identically for all of them
/// (and for the per-op in-place baseline) — a precondition for the
/// bit-parity assertion.
const INGEST_BATCHES: [usize; 4] = [1, 8, 64, 256];

/// Workload knobs for the write-path (ingest) benchmark; mirrors the
/// criterion `sharded_index` ingest workload so the JSON trajectory and
/// the microbench agree on what "publishing ingest" means.
struct IngestSizes {
    n: usize,
    d: usize,
    k: usize,
    l: usize,
    seal_every: usize,
    shards: usize,
    queries: usize,
    reps: usize,
}

const INGEST_FULL: IngestSizes = IngestSizes {
    n: 20_000,
    d: 128,
    k: 16,
    l: 12,
    seal_every: 256,
    shards: 4,
    queries: 64,
    reps: 3,
};

const INGEST_SMOKE: IngestSizes = IngestSizes {
    n: 1_024,
    d: 128,
    k: 16,
    l: 12,
    seal_every: 256,
    shards: 4,
    queries: 16,
    reps: 2,
};

/// Fold every query's candidates and full `QueryStats` into one FNV
/// checksum — the bit-parity fingerprint of an ingested index.
fn ingest_checksum(
    queries: &[BitVector],
    mut candidates: impl FnMut(&BitVector) -> (Vec<usize>, QueryStats),
) -> u64 {
    queries.iter().fold(FNV_SEED, |mut h, q| {
        let (cands, stats) = candidates(q);
        h = cands.iter().fold(h, |h, &i| fnv(h, i as u64));
        h = fnv(h, stats.tables_probed as u64);
        h = fnv(h, stats.candidates_retrieved as u64);
        h = fnv(h, stats.distinct_candidates as u64);
        fnv(h, stats.duplicates as u64)
    })
}

/// Time the publishing sharded ingest at each group-commit size against
/// the in-place unsharded baseline, assert query parity and the
/// one-epoch-per-batch publication contract, and return the JSON rows.
fn ingest_report(s: &IngestSizes) -> Vec<String> {
    let mut rng = seeded(0x16E5);
    let mut points = BitStore::with_dim(s.d);
    for _ in 0..s.n {
        points.push_random(&mut rng);
    }
    let queries: Vec<BitVector> = (0..s.queries)
        .map(|_| BitVector::random(&mut rng, s.d))
        .collect();
    let fam = Power::new(BitSampling::new(s.d), s.k);

    // In-place baseline: per-op inserts into the unsharded index, sealed
    // every `seal_every` rows — the write path without publication.
    let (inplace_ns, inplace) = time(s.reps, || {
        let mut idx = DynamicIndex::build(&fam, BitStore::with_dim(s.d), s.l, &mut seeded(0x16E6));
        for i in 0..s.n {
            idx.insert(points.row(i)).unwrap();
            if (i + 1) % s.seal_every == 0 {
                idx.seal();
            }
        }
        idx
    });
    let want = ingest_checksum(&queries, |q| inplace.candidates(q, None));

    let mut rows = Vec::new();
    for &batch in &INGEST_BATCHES {
        let (ns, idx) = time(s.reps, || {
            let mut idx = ShardedIndex::build(
                &fam,
                BitStore::with_dim(s.d),
                s.l,
                s.shards,
                &mut seeded(0x16E6),
            );
            let mut done = 0usize;
            while done < s.n {
                let hi = (done + batch).min(s.n);
                let mut wb = idx.new_batch();
                for i in done..hi {
                    wb.insert(points.row(i));
                }
                idx.apply_batch(&wb).expect("in-range inserts");
                done = hi;
                if done.is_multiple_of(s.seal_every) {
                    idx.seal();
                }
            }
            idx
        });
        let got = ingest_checksum(&queries, |q| idx.candidates(q, None));
        assert_eq!(
            got, want,
            "publishing ingest (batch {batch}) broke query parity with in-place"
        );
        let epochs = idx.epoch() as usize;
        assert_eq!(
            epochs,
            s.n.div_ceil(batch) + s.n / s.seal_every,
            "batch {batch}: expected one epoch per group commit plus one per seal"
        );
        let ratio = ns as f64 / inplace_ns as f64;
        println!(
            "ingest batch {batch:>4}   publishing {ns:>12} ns   in-place {inplace_ns:>12} ns   ratio {ratio:.2}x   epochs {epochs}"
        );
        rows.push(format!(
            "  \"ingest_batch_{}\": {{ \"publishing_ns\": {}, \"inplace_ns\": {}, \"ratio\": {:.2}, \"n\": {}, \"shards\": {}, \"epochs\": {} }}",
            batch, ns, inplace_ns, ratio, s.n, s.shards, epochs
        ));
    }
    println!(
        "ingest parity: all {} batch sizes answer bit-identically to the in-place index",
        INGEST_BATCHES.len()
    );
    rows
}

/// Child mode: print raw measurements for the parent to merge.
fn report_child(s: &Sizes) {
    println!("KERNEL={}", kernels::active().name);
    for b in run_benches(s) {
        println!(
            "BENCH name={} ns={} checksum={:016x} n={} dim={}",
            b.name, b.ns, b.checksum, b.n, b.dim
        );
    }
}

/// A child `BENCH` line, parsed.
fn parse_child_line(line: &str) -> Option<(String, u128, u64)> {
    let mut name = None;
    let mut ns = None;
    let mut checksum = None;
    for field in line.strip_prefix("BENCH ")?.split_whitespace() {
        let (k, v) = field.split_once('=')?;
        match k {
            "name" => name = Some(v.to_string()),
            "ns" => ns = v.parse::<u128>().ok(),
            "checksum" => checksum = u64::from_str_radix(v, 16).ok(),
            _ => {}
        }
    }
    Some((name?, ns?, checksum?))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes = if smoke { &SMOKE } else { &FULL };

    if std::env::var_os(CHILD_MARKER).is_some() {
        report_child(sizes);
        return;
    }

    let tier = kernels::active().name;
    eprintln!("bench-report: active dispatch tier = {tier}");
    if tier == "scalar" {
        eprintln!("bench-report: warning: parent already dispatches scalar; speedups will be ~1.0");
    }

    let native = run_benches(sizes);

    // Scalar side: same binary, same workloads, dispatch pinned.
    let exe = std::env::current_exe().expect("own binary path");
    let mut cmd = std::process::Command::new(exe);
    if smoke {
        cmd.arg("--smoke");
    }
    let out = cmd
        .env(CHILD_MARKER, "1")
        .env("DSH_FORCE_SCALAR", "1")
        .output()
        .expect("spawning forced-scalar child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "scalar child failed:\n{stdout}");
    assert!(
        stdout.lines().any(|l| l == "KERNEL=scalar"),
        "child did not dispatch to the scalar tier:\n{stdout}"
    );
    let scalar: Vec<(String, u128, u64)> = stdout.lines().filter_map(parse_child_line).collect();
    assert_eq!(
        scalar.len(),
        native.len(),
        "child reported {} benches, expected {}:\n{stdout}",
        scalar.len(),
        native.len()
    );

    let mut rows = Vec::new();
    let mut parity_failures = 0;
    for (b, (sname, sns, schecksum)) in native.iter().zip(&scalar) {
        assert_eq!(b.name, sname, "bench order mismatch");
        if b.checksum != *schecksum {
            eprintln!(
                "PARITY FAILURE: {}: {} ({:016x}) != scalar ({:016x})",
                b.name, tier, b.checksum, schecksum
            );
            parity_failures += 1;
        }
        let speedup = *sns as f64 / b.ns as f64;
        println!(
            "{:<30} scalar {:>12} ns   {} {:>12} ns   speedup {:.2}x",
            b.name, sns, tier, b.ns, speedup
        );
        rows.push(format!(
            "  \"{}\": {{ \"scalar_ns\": {}, \"simd_ns\": {}, \"speedup\": {:.2}, \"n\": {}, \"dim\": {} }}",
            b.name, sns, b.ns, speedup, b.n, b.dim
        ));
    }
    assert_eq!(
        parity_failures, 0,
        "{parity_failures} bench(es) broke scalar/SIMD bit-parity"
    );
    println!(
        "parity: all {} bench checksums identical under both dispatch paths",
        rows.len()
    );

    // Write path: publishing (group-commit) vs in-place ingest.
    let ingest_rows = ingest_report(if smoke { &INGEST_SMOKE } else { &INGEST_FULL });

    if smoke {
        println!("smoke mode: BENCH_kernels.json / BENCH_ingest.json not written");
        return;
    }

    // The workspace root is two levels above this crate's manifest.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_kernels.json");
    let json = format!("{{\n{}\n}}\n", rows.join(",\n"));
    std::fs::write(&path, json).expect("writing BENCH_kernels.json");
    println!("wrote {}", path.display());
    let path = root.join("BENCH_ingest.json");
    let json = format!("{{\n{}\n}}\n", ingest_rows.join(",\n"));
    std::fs::write(&path, json).expect("writing BENCH_ingest.json");
    println!("wrote {}", path.display());
}
