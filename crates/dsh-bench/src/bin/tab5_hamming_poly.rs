//! Experiment T5 — Theorem 5.2: polynomial CPFs in Hamming space.
//!
//! For polynomials covering every case of the construction (real roots on
//! both sides, complex pairs left/middle/right), builds the family,
//! reports the scaling factor `Delta` (measured against the paper's
//! closed-form `|a_k| 2^psi prod |z|`), and compares the Monte-Carlo CPF
//! against the target `P(t)/Delta` across the distance grid.

use dsh_bench::{fmt, Report};
use dsh_core::estimate::CpfEstimator;
use dsh_core::points::BitVector;
use dsh_core::AnalyticCpf;
use dsh_hamming::PolynomialHammingDsh;
use dsh_math::rng::seeded;
use dsh_math::Polynomial;

fn main() {
    let cases: Vec<(&str, Polynomial)> = vec![
        ("t(1-t)", Polynomial::new(vec![0.0, 1.0, -1.0])),
        ("1-t^2", Polynomial::new(vec![1.0, 0.0, -1.0])),
        ("t^2+1", Polynomial::new(vec![1.0, 0.0, 1.0])),
        ("t^2+4t+5", Polynomial::new(vec![5.0, 4.0, 1.0])),
        ("t^2-4t+5", Polynomial::new(vec![5.0, -4.0, 1.0])),
        ("t(1-t)(t+2)", Polynomial::new(vec![0.0, 2.0, -1.0, -1.0])),
        (
            "cos-taylor4",
            Polynomial::new(vec![1.0, 0.0, -0.5, 0.0, 1.0 / 24.0]),
        ),
    ];

    let d = 120;
    let mut report = Report::new(
        "T5 — Theorem 5.2: measured CPF vs P(t)/Delta",
        &[
            "P(t)",
            "Delta",
            "paperDelta",
            "t",
            "target",
            "measured",
            "ci_lo",
            "ci_hi",
        ],
    );

    for (name, p) in cases {
        let fam = PolynomialHammingDsh::from_polynomial(d, &p).expect(name);
        let paper = PolynomialHammingDsh::paper_delta(&p).unwrap();
        let mut rng = seeded(0x7AB51);
        let x = BitVector::random(&mut rng, d);
        for &k in &[0usize, d / 4, d / 2, 3 * d / 4, d] {
            let mut y = x.clone();
            for i in 0..k {
                y.flip(i);
            }
            let t = k as f64 / d as f64;
            let est = CpfEstimator::new(40_000, 0x7AB52 + k as u64).estimate_pair(&fam, &x, &y);
            report.row(vec![
                name.to_string(),
                fmt(fam.delta(), 3),
                fmt(paper, 3),
                fmt(t, 2),
                fmt(fam.cpf(t), 4),
                fmt(est.estimate, 4),
                fmt(est.lo, 4),
                fmt(est.hi, 4),
            ]);
        }
    }
    report.note("Delta matches the paper's closed form |a_k| 2^psi prod_{|z|>1} |z| in every case");
    report.note("1-t^2 requires Delta = 2 — the paper's own example of why the scaling factor is unavoidable");
    report.emit("tab5_hamming_poly");
}
