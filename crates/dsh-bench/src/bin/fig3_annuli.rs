//! Figure 3: the annuli `[alpha_-, alpha_+]` of Theorem 6.2 as a function
//! of the peak inner product `alpha_max`, for `s = 2, 3, 4`.

use dsh_bench::{fmt, Report};
use dsh_sphere::unimodal::annulus_interval;

fn main() {
    let mut report = Report::new(
        "Figure 3 — annulus boundaries vs alpha_max for s = 2, 3, 4",
        &[
            "alpha_max",
            "lo(s=2)",
            "hi(s=2)",
            "lo(s=3)",
            "hi(s=3)",
            "lo(s=4)",
            "hi(s=4)",
        ],
    );
    for i in 0..=38 {
        let alpha_max = -0.95 + 0.05 * i as f64;
        let mut row = vec![fmt(alpha_max, 2)];
        for s in [2.0, 3.0, 4.0] {
            let (lo, hi) = annulus_interval(alpha_max, s);
            row.push(fmt(lo, 3));
            row.push(fmt(hi, 3));
        }
        report.row(row);
    }
    report.note("each annulus contains alpha_max; width grows with s and shrinks toward the poles");
    report.emit("fig3_annuli");
}
