//! Experiment T9 — the §4.1 claim: anti bit-sampling is *suboptimal*.
//!
//! Its `rho_minus = ln r / ln(r/c) = Theta(1/ln c)`, while embedding
//! Hamming points on the sphere (`alpha = 1 - 2t`) and using the filter
//! family `D-` gives `rho_minus -> (roughly) 1/c`. This table shows the
//! crossover: for every gap `c`, the sphere route's exponent is smaller
//! (better), and the advantage grows with `c`.

use dsh_bench::{fmt, Report};
use dsh_hamming::AntiBitSampling;

fn main() {
    let mut report = Report::new(
        "T9 — anti bit-sampling rho (Theta(1/ln c)) vs sphere-route rho (~1/c), small r",
        &[
            "r",
            "c",
            "rho anti",
            "rho sphere",
            "anti/sphere",
            "1/ln c",
            "1/c",
        ],
    );
    for &r in &[0.01f64, 0.001] {
        for &c in &[2.0f64, 4.0, 8.0, 16.0, 32.0] {
            let rho_anti = AntiBitSampling::rho_minus(r, c);
            // Sphere route: relative distances r and r/c map to inner
            // products 1-2r and 1-2r/c; the filter family D- achieves
            // ln(1/f(alpha)) ~ ((1+alpha)/(1-alpha)) t^2/2, so
            // rho = a(1-2r/c)/a(1-2r)... inverted: exponent ratio at the
            // two similarities.
            let exp_at = |t_rel: f64| {
                let alpha: f64 = 1.0 - 2.0 * t_rel;
                (1.0 + alpha) / (1.0 - alpha)
            };
            let rho_sphere = exp_at(r) / exp_at(r / c);
            report.row(vec![
                fmt(r, 3),
                fmt(c, 0),
                fmt(rho_anti, 4),
                fmt(rho_sphere, 4),
                fmt(rho_anti / rho_sphere, 2),
                fmt(1.0 / c.ln(), 4),
                fmt(1.0 / c, 4),
            ]);
        }
    }
    report.note("rho smaller = better separation; the sphere route wins at every c and r");
    report.note(
        "rho_anti tracks 1/ln c while rho_sphere tracks 1/c — the §4.1 'perhaps surprising' gap",
    );
    report.emit("tab9_anti_bitsampling");
}
