//! Experiment T8 — privacy-preserving distance estimation (§6.4).
//!
//! Measures, for the PSI-based protocol: the false-negative rate at
//! distance `r` (target `eps`), the false-positive rate at `c r` (target
//! `delta`), the expected leakage in bits, and — the privacy property —
//! how flat the intersection-size signal is across distances inside
//! `[0, r]` for a step-ish CPF versus a plain LSH.

use dsh_bench::{fmt, Report};
use dsh_core::combinators::{Concat, Power};
use dsh_core::points::BitVector;
use dsh_core::BoxedDshFamily;
use dsh_data::hamming_data;
use dsh_hamming::{AntiBitSampling, BitSampling};
use dsh_math::rng::seeded;
use dsh_privacy::DistanceEstimationProtocol;

fn main() {
    let d = 256;
    let r_rel: f64 = 0.05;
    let eps = 0.05;

    let mut report = Report::new(
        "T8 — §6.4 protocol: measured error rates and leakage",
        &[
            "family",
            "c",
            "N",
            "eps target",
            "eps_hat",
            "delta_hat",
            "mean |I| @r",
            "mean leak bits",
        ],
    );

    for &(k, c) in &[(14usize, 4.0f64), (20, 4.0), (20, 8.0)] {
        let fam = Power::new(BitSampling::new(d), k);
        let f_min = (1.0 - r_rel).powi(k as i32);
        let n_hashes = DistanceEstimationProtocol::<BitVector>::required_hashes(f_min, eps);
        let mut rng = seeded(0x7AB81);
        let proto = DistanceEstimationProtocol::new(&fam, n_hashes, 16, &mut rng);

        let runs = 200;
        let mut false_neg = 0usize;
        let mut false_pos = 0usize;
        let mut inter = 0usize;
        let mut leak = 0.0;
        for _ in 0..runs {
            let x = BitVector::random(&mut rng, d);
            let close = hamming_data::point_at_distance(&mut rng, &x, (r_rel * d as f64) as usize);
            let far =
                hamming_data::point_at_distance(&mut rng, &x, (c * r_rel * d as f64) as usize);
            let out_close = proto.run(&x, &close);
            if !out_close.answer {
                false_neg += 1;
            }
            inter += out_close.intersection_size;
            leak += out_close.leakage_bits;
            if proto.run(&x, &far).answer {
                false_pos += 1;
            }
        }
        report.row(vec![
            format!("(1-t)^{k}"),
            fmt(c, 0),
            n_hashes.to_string(),
            fmt(eps, 2),
            fmt(false_neg as f64 / runs as f64, 3),
            fmt(false_pos as f64 / runs as f64, 3),
            fmt(inter as f64 / runs as f64, 2),
            fmt(leak / runs as f64, 1),
        ]);
    }

    // Privacy flatness: intersection size vs distance within [0, r].
    let mut flat = Report::new(
        "T8b — intersection-size signal inside [0, r]: plain LSH leaks proximity, step CPF does not",
        &["family", "dist 0", "dist r/2", "dist r", "spread (max/min)"],
    );
    let k = 14usize;
    let n_hashes = 2000;
    let mut rng = seeded(0x7AB82);
    let plain = Power::new(BitSampling::new(d), k);
    let step: Concat<[u64]> = Concat::new(vec![
        Box::new(Power::new(BitSampling::new(d), k)) as BoxedDshFamily<[u64]>,
        Box::new(AntiBitSampling::new(d)),
    ]);
    let proto_plain = DistanceEstimationProtocol::new(&plain, n_hashes, 16, &mut rng);
    let proto_step = DistanceEstimationProtocol::new(&step, n_hashes, 16, &mut rng);
    for (label, proto) in [("plain", &proto_plain), ("step", &proto_step)] {
        let runs = 50;
        let mut sizes = [0usize; 3];
        for _ in 0..runs {
            let x = BitVector::random(&mut rng, d);
            for (j, dist) in [
                0usize,
                (r_rel * d as f64 / 2.0) as usize,
                (r_rel * d as f64) as usize,
            ]
            .into_iter()
            .enumerate()
            {
                let y = hamming_data::point_at_distance(&mut rng, &x, dist);
                sizes[j] += proto.run(&x, &y).intersection_size;
            }
        }
        let vals: Vec<f64> = sizes.iter().map(|&s| s as f64 / runs as f64).collect();
        // Spread of the in-range signal (r/2 vs r); distance 0 is shown
        // separately since the step family maps it to zero by design.
        let spread = vals[1].max(vals[2]) / vals[1].min(vals[2]).max(0.01);
        flat.row(vec![
            label.to_string(),
            fmt(vals[0], 1),
            fmt(vals[1], 1),
            fmt(vals[2], 1),
            fmt(spread, 1),
        ]);
    }
    flat.note("plain LSH: intersection collapses from N at dist 0 — a triangulation-attack signal");
    flat.note("step CPF: near-constant (and *zero* at dist 0), hiding proximity within the range");
    report.emit("tab8_privacy");
    flat.emit("tab8b_privacy_flatness");
}
