//! Experiment T6 — annulus search on the unit sphere
//! (Theorems 6.1, 6.2, 6.4).
//!
//! Planted instances: one point at inner product `alpha_max` from the
//! query, `n - 1` uniform background points (inner products concentrated
//! near 0 — *outside* the annulus for `alpha_max` well away from 0).
//! The unimodal filter structure must (a) succeed with probability >= 1/2,
//! (b) touch far fewer points than the linear scan, with the advantage
//! governed by the Theorem 6.4 exponent.

use dsh_bench::{fmt, Report};
use dsh_core::AnalyticCpf;
use dsh_data::sphere_data::planted_sphere_instance;
use dsh_index::annulus::AnnulusIndex;
use dsh_index::linear_scan::LinearScan;
use dsh_math::rng::seeded;
use dsh_sphere::unimodal::{annulus_interval, annulus_rho, UnimodalFilterDsh};

fn main() {
    let d = 64;
    let alpha_max = 0.6;
    let s_report = 2.0;
    let (lo, hi) = annulus_interval(alpha_max, s_report);
    let (a_lo, a_hi) = annulus_interval(alpha_max, 1.2);
    let rho = annulus_rho(a_lo, a_hi, lo, hi);

    let mut report = Report::new(
        "T6 — sphere annulus search (Thm 6.2/6.4): success >= 1/2, sublinear candidate work",
        &[
            "n",
            "t",
            "L",
            "success",
            "avg retrieved",
            "avg dist comps",
            "scan cost",
            "work ratio",
        ],
    );
    report.note(format!(
        "alpha_max = {alpha_max}, reporting interval [{lo:.3}, {hi:.3}], Thm 6.4 rho = {rho:.3}"
    ));

    for &(n, t) in &[(500usize, 1.3f64), (2000, 1.5), (8000, 1.7)] {
        let fam = UnimodalFilterDsh::new(d, alpha_max, t);
        let f_peak = fam.cpf(alpha_max);
        let l = (1.5 / f_peak).ceil() as usize;

        let runs = 12;
        let mut successes = 0usize;
        let mut retrieved = 0usize;
        let mut dist_comps = 0usize;
        for run in 0..runs {
            let mut rng = seeded(0x7AB61 + run as u64);
            let inst = planted_sphere_instance(&mut rng, n, d, alpha_max);
            let measure = dsh_index::measures::inner_product();
            let idx = AnnulusIndex::build(&fam, measure, (lo, hi), inst.points, l, &mut rng);
            let (hit, stats) = idx.query(&inst.query);
            if hit.is_some() {
                successes += 1;
            }
            retrieved += stats.candidates_retrieved;
            dist_comps += stats.distance_computations;
        }
        let scan = {
            // Average linear-scan cost to find the planted point.
            let mut rng = seeded(0x7AB62);
            let inst = planted_sphere_instance(&mut rng, n, d, alpha_max);
            let measure = dsh_index::measures::inner_product();
            let scan = LinearScan::new(inst.points, measure);
            let (_, evals) = scan.find_in_interval(&inst.query, lo, hi);
            evals
        };
        let avg_retrieved = retrieved as f64 / runs as f64;
        report.row(vec![
            n.to_string(),
            fmt(t, 1),
            l.to_string(),
            format!("{successes}/{runs}"),
            fmt(avg_retrieved, 1),
            fmt(dist_comps as f64 / runs as f64, 1),
            scan.to_string(),
            fmt(avg_retrieved / n as f64, 3),
        ]);
    }
    report.note("success rate stays >= 1/2 while candidate work per point shrinks as n grows");
    report.emit("tab6_annulus");
}
