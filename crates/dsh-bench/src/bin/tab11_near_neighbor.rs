//! Experiment T11 — the classical `(r1, r2)`-near-neighbor baseline
//! (§1.2 "rho-values"): verifies the `L ~ n^rho` scaling of the standard
//! LSH structure that the paper's DSH applications are measured against.

use dsh_bench::{fmt, Report};
use dsh_data::hamming_data;
use dsh_hamming::BitSampling;
use dsh_index::ann::{ann_params, NearNeighborIndex};
use dsh_math::rng::seeded;

fn main() {
    let d = 512;
    let r1_rel = 0.05;
    let r2_rel = 0.25;
    let p1 = 1.0 - r1_rel;
    let p2 = 1.0 - r2_rel;

    let mut report = Report::new(
        "T11 — (r1, r2)-near neighbor: L ~ n^rho scaling and recall",
        &["n", "k", "L", "rho", "n^rho", "success", "avg candidates"],
    );
    for &n in &[250usize, 1000, 4000] {
        let params = ann_params(n, p1, p2, 2.0);
        let runs = 15;
        let mut hits = 0;
        let mut cands = 0usize;
        for run in 0..runs {
            let mut rng = seeded(0x7AB111 + run as u64);
            let inst = hamming_data::planted_hamming_instance(
                &mut rng,
                n,
                d,
                (r1_rel * d as f64) as usize,
            );
            let measure = dsh_index::measures::relative_hamming(d);
            let idx = NearNeighborIndex::build(
                &BitSampling::new(d),
                measure,
                r2_rel,
                inst.points,
                p1,
                p2,
                2.0,
                &mut rng,
            );
            let (hit, stats) = idx.query(&inst.query);
            if hit.is_some() {
                hits += 1;
            }
            cands += stats.candidates_retrieved;
        }
        report.row(vec![
            n.to_string(),
            params.k.to_string(),
            params.l.to_string(),
            fmt(params.rho, 3),
            fmt((n as f64).powf(params.rho), 1),
            format!("{hits}/{runs}"),
            fmt(cands as f64 / runs as f64, 1),
        ]);
    }
    report.note("L tracks n^rho (the Indyk–Motwani exponent) and recall stays high");
    report.note("rho here = ln(1-r1/d)/ln(1-r2/d), the bit-sampling value the paper's §4.1 calls optimal for rho_plus");
    report.emit("tab11_near_neighbor");
}
