//! Experiment T1 — cross-polytope DSH (Theorem 2.1 / Corollary 2.2).
//!
//! Measures `ln(1/f(alpha))` of the anti-LSH family `CP-` across dimensions
//! and compares against the leading term `((1+alpha)/(1-alpha)) ln d`. The
//! theorem predicts the measured exponent to exceed the leading term by
//! only `O_alpha(ln ln d)`, and the ratio to 1 should improve with `d`.

use dsh_bench::{fmt, Report};
use dsh_core::estimate::CpfEstimator;
use dsh_math::rng::seeded;
use dsh_sphere::cross_polytope::{CrossPolytopeAnti, CrossPolytopeLsh};
use dsh_sphere::geometry::pair_with_inner_product;

fn main() {
    let alphas = [-0.3, 0.0, 0.3];
    let dims = [8usize, 16, 32, 64];

    let mut report = Report::new(
        "T1 — CP- exponent ln(1/f(alpha)) vs ((1+a)/(1-a)) ln d (Cor. 2.2)",
        &[
            "d",
            "alpha",
            "measured ln(1/f)",
            "lead term",
            "excess",
            "excess/lnln d",
        ],
    );

    for &d in &dims {
        let fam = CrossPolytopeAnti::new(d);
        let trials = if d <= 32 { 60_000 } else { 30_000 };
        let mut rng = seeded(0x7AB11);
        let pairs: Vec<_> = alphas
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a))
            .collect();
        let ests = CpfEstimator::new(trials, 0x7AB12).estimate_curve(&fam, &pairs);
        for (est, &alpha) in ests.iter().zip(&alphas) {
            if est.successes == 0 {
                continue;
            }
            let measured = -(est.estimate.ln());
            let lead = CrossPolytopeAnti::theoretical_ln_inv_cpf(d, alpha);
            let lnln = (d as f64).ln().ln();
            report.row(vec![
                d.to_string(),
                fmt(alpha, 1),
                fmt(measured, 3),
                fmt(lead, 3),
                fmt(measured - lead, 3),
                fmt((measured - lead) / lnln, 3),
            ]);
        }
    }
    report.note("excess = measured - leading term; bounded by O(ln ln d) per the theorem");

    // Sanity row: CP+ at alpha = 0 must sit at f = 1/(2d).
    let d = 16;
    let mut rng = seeded(0x7AB13);
    let (x, y) = pair_with_inner_product(&mut rng, d, 0.0);
    let est = CpfEstimator::new(60_000, 0x7AB14).estimate_pair(&CrossPolytopeLsh::new(d), &x, &y);
    report.note(format!(
        "CP+ check at alpha=0, d=16: measured f = {:.5}, expected 1/(2d) = {:.5}",
        est.estimate,
        1.0 / (2.0 * d as f64)
    ));
    report.emit("tab1_cross_polytope");
}
