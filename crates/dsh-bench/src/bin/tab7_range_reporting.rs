//! Experiment T7 — spherical range reporting (Theorem 6.5).
//!
//! The theorem's point: with a *step-function* CPF the duplication
//! overhead per reported point is bounded by `f_max / f_min` over the
//! target range, whereas a plain monotone LSH re-finds the closest points
//! in nearly every repetition. We report recall, duplicates per reported
//! point, and total work for both families across output sizes.

use dsh_bench::{fmt, Report};
use dsh_core::combinators::{Concat, Power};
use dsh_core::points::BitVector;
use dsh_core::BoxedDshFamily;
use dsh_data::hamming_data;
use dsh_hamming::{AntiBitSampling, BitSampling};
use dsh_index::range_reporting::RangeReportingIndex;
use dsh_math::rng::seeded;

fn main() {
    let d = 256;
    let r: f64 = 0.05;
    let r_plus = 0.2;
    let far = 400usize;

    let mut report = Report::new(
        "T7 — range reporting (Thm 6.5): step CPF bounds duplicates per result",
        &[
            "|S*|",
            "family",
            "L",
            "recall",
            "reported",
            "dups/result/L",
            "retrieved",
        ],
    );

    for &close in &[10usize, 50, 200] {
        for step in [false, true] {
            let k = 10usize;
            let (fam, f_r, label): (BoxedDshFamily<[u64]>, f64, &str) = if step {
                (
                    Box::new(Concat::new(vec![
                        Box::new(Power::new(BitSampling::new(d), k)) as BoxedDshFamily<[u64]>,
                        Box::new(AntiBitSampling::new(d)),
                    ])),
                    (1.0 - r).powi(k as i32) * r,
                    "step (1-t)^k t",
                )
            } else {
                (
                    Box::new(Power::new(BitSampling::new(d), k)),
                    (1.0 - r).powi(k as i32),
                    "plain (1-t)^k",
                )
            };
            let l = (2.0 / f_r).ceil() as usize;

            let mut rng = seeded(0x7AB71 + close as u64);
            let q = BitVector::random(&mut rng, d);
            let mut points = Vec::new();
            let mut truth = Vec::new();
            for i in 0..close {
                points.push(hamming_data::point_at_distance(
                    &mut rng,
                    &q,
                    (r * d as f64) as usize,
                ));
                truth.push(i);
            }
            points.extend(hamming_data::uniform_hamming(&mut rng, far, d));

            let measure = dsh_index::measures::relative_hamming(d);
            let idx = RangeReportingIndex::build(&fam, measure, r, r_plus, points, l, &mut rng);
            // One query pass serves both the report row and the recall
            // figure (the `recall` helper would re-run the whole query).
            let (out, stats) = idx.query(&q);
            let recall =
                truth.iter().filter(|i| out.contains(i)).count() as f64 / truth.len() as f64;
            let dup_norm =
                stats.duplicates as f64 / (out.len().max(1) as f64 * idx.repetitions() as f64);
            report.row(vec![
                close.to_string(),
                label.to_string(),
                l.to_string(),
                fmt(recall, 2),
                out.len().to_string(),
                fmt(dup_norm, 4),
                stats.candidates_retrieved.to_string(),
            ]);
        }
    }
    report.note("dups/result/L: expected collisions per repetition per reported point;");
    report.note("the plain family pays ~1.0 for the closest points (f(0)=1), the step family stays near f_max = f(r)-level");
    report.emit("tab7_range_reporting");
}
