//! Experiment T2 — the Gaussian filter family `D-` (Theorem 1.2,
//! Lemma A.5).
//!
//! For each threshold `t` and inner product `alpha`: the exact CPF (from
//! bivariate orthant probabilities), the Lemma A.5 closed-form envelope,
//! the Theorem 1.2 leading exponent, and a Monte-Carlo spot check at the
//! smallest `t`.

use dsh_bench::{fmt, fmt_sci, Report};
use dsh_core::estimate::CpfEstimator;
use dsh_core::AnalyticCpf;
use dsh_math::rng::seeded;
use dsh_sphere::filter::FilterDshMinus;
use dsh_sphere::geometry::pair_with_inner_product;

fn main() {
    let mut report = Report::new(
        "T2 — filter family D-: exact CPF vs Lemma A.5 envelope vs Theorem 1.2 exponent",
        &[
            "t",
            "m",
            "alpha",
            "exact f",
            "A.5 lower",
            "A.5 upper",
            "ln(1/f)",
            "lead",
            "excess/ln t",
        ],
    );
    for &t in &[1.5f64, 2.0, 2.5, 3.0] {
        let fam = FilterDshMinus::new(16, t);
        for &alpha in &[-0.6f64, -0.3, 0.0, 0.3, 0.6] {
            if alpha.abs() >= 1.0 - 1.0 / t {
                continue; // outside the theorem's validity window
            }
            let exact = fam.cpf(alpha);
            let lead = FilterDshMinus::theoretical_ln_inv_cpf(t, alpha);
            let exponent = -exact.ln();
            report.row(vec![
                fmt(t, 1),
                fam.filter_count().to_string(),
                fmt(alpha, 1),
                fmt_sci(exact),
                fmt_sci(fam.cpf_lower_bound(alpha)),
                fmt_sci(fam.cpf_upper_bound(alpha)),
                fmt(exponent, 3),
                fmt(lead, 3),
                fmt((exponent - lead) / t.ln(), 2),
            ]);
        }
    }
    report.note("exact f always inside the [A.5 lower, A.5 upper] envelope");
    report.note("excess/ln t bounded: ln(1/f) = lead + Theta(log t) (Theorem 1.2)");

    // Monte-Carlo spot check at t = 1.5.
    let d = 16;
    let t = 1.5;
    let fam = FilterDshMinus::new(d, t);
    let mut rng = seeded(0x7AB21);
    for &alpha in &[-0.3, 0.3] {
        let (x, y) = pair_with_inner_product(&mut rng, d, alpha);
        let est = CpfEstimator::new(8000, 0x7AB22).estimate_pair(&fam, &x, &y);
        report.note(format!(
            "MC check t=1.5 alpha={alpha}: measured {:.4} in [{:.4}, {:.4}], exact {:.4}",
            est.estimate,
            est.lo,
            est.hi,
            fam.cpf(alpha)
        ));
    }
    report.emit("tab2_filter_cpf");
}
