//! Polynomial CPFs on the sphere via Valiant's asymmetric embeddings
//! (Theorem 5.1).
//!
//! For a polynomial `P(t) = sum_i a_i t^i` with `sum_i |a_i| = 1`, Valiant's
//! pair of maps
//!
//! ```text
//! phi_1(x) = concat_i sqrt(|a_i|)        x^{(i)}
//! phi_2(y) = concat_i (a_i / sqrt(|a_i|)) y^{(i)}
//! ```
//!
//! (`x^{(i)}` the `i`-fold tensor power, `x^{(0)} = (1)`) satisfies
//! `<phi_1(x), phi_2(y)> = P(<x, y>)` and maps `S^{d-1}` into `S^{D-1}`,
//! `D = sum_i d^i`. Composing with any LSHable angular similarity `sim`
//! (we use SimHash) yields a DSH family with CPF `sim(P(<x, y>))`
//! (Theorem 5.1). The asymmetry of the two maps is what permits negative
//! coefficients `a_i`.

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::DenseVector;
use dsh_math::Polynomial;
use rand::Rng;

use crate::simhash::SimHash;

/// Largest embedded dimension we allow (`D = sum d^i`); guards against
/// accidental `d^k` blowups. Use [`crate::tensor_sketch`] beyond this.
pub const MAX_EMBEDDED_DIM: usize = 4_000_000;

/// The `k`-fold tensor power of `x`, flattened: entry `(i_1, ..., i_k)` is
/// `prod_j x_{i_j}`. `k = 0` gives the 1-dimensional vector `(1)`.
pub fn tensor_power(x: &[f64], k: usize) -> Vec<f64> {
    let mut out = vec![1.0];
    for _ in 0..k {
        let mut next = Vec::with_capacity(out.len() * x.len());
        for &v in &out {
            for &c in x {
                next.push(v * c);
            }
        }
        out = next;
    }
    out
}

/// Valiant's asymmetric embedding pair for a normalized polynomial.
#[derive(Debug, Clone)]
pub struct ValiantEmbedding {
    poly: Polynomial,
    d: usize,
    embedded_dim: usize,
}

impl ValiantEmbedding {
    /// Build for points of dimension `d` and polynomial `p` with
    /// `sum |a_i| = 1` (asserted to 1e-9).
    pub fn new(d: usize, p: &Polynomial) -> Self {
        assert!(d > 0);
        let s = p.abs_coeff_sum();
        assert!(
            (s - 1.0).abs() < 1e-9,
            "Theorem 5.1 requires sum |a_i| = 1, got {s}"
        );
        let embedded_dim: usize = p
            .coeffs()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(i, _)| d.checked_pow(i as u32).expect("dimension overflow"))
            .sum();
        assert!(
            embedded_dim <= MAX_EMBEDDED_DIM,
            "embedded dimension {embedded_dim} too large; use tensor_sketch"
        );
        ValiantEmbedding {
            poly: p.clone(),
            d,
            embedded_dim,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.d
    }

    /// Embedded dimension `D = sum_{a_i != 0} d^i`.
    pub fn embedded_dim(&self) -> usize {
        self.embedded_dim
    }

    /// The polynomial.
    pub fn polynomial(&self) -> &Polynomial {
        &self.poly
    }

    /// Data-side map `phi_1`.
    pub fn phi1(&self, x: &DenseVector) -> DenseVector {
        self.embed(x.as_slice(), |a| a.abs().sqrt())
    }

    /// Query-side map `phi_2` (carries the coefficient signs).
    pub fn phi2(&self, y: &DenseVector) -> DenseVector {
        self.embed(y.as_slice(), |a| a / a.abs().sqrt())
    }

    /// [`ValiantEmbedding::phi1`] on a raw row.
    pub fn phi1_row(&self, x: &[f64]) -> DenseVector {
        self.embed(x, |a| a.abs().sqrt())
    }

    /// [`ValiantEmbedding::phi2`] on a raw row.
    pub fn phi2_row(&self, y: &[f64]) -> DenseVector {
        self.embed(y, |a| a / a.abs().sqrt())
    }

    fn embed(&self, x: &[f64], weight: impl Fn(f64) -> f64) -> DenseVector {
        assert_eq!(x.len(), self.d, "dimension mismatch");
        let mut out = Vec::with_capacity(self.embedded_dim);
        for (i, &a) in self.poly.coeffs().iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let w = weight(a);
            out.extend(tensor_power(x, i).into_iter().map(|v| v * w));
        }
        DenseVector::new(out)
    }
}

/// DSH family on `S^{d-1}` with CPF `sim(P(alpha))` where `sim` is the
/// SimHash similarity (Theorem 5.1 instantiated with Charikar's family).
#[derive(Debug, Clone)]
pub struct PolynomialSphereDsh {
    embedding: ValiantEmbedding,
    inner: SimHash,
}

impl PolynomialSphereDsh {
    /// Build for unit vectors in `R^d` and normalized polynomial `p`.
    pub fn new(d: usize, p: &Polynomial) -> Self {
        let embedding = ValiantEmbedding::new(d, p);
        let inner = SimHash::new(embedding.embedded_dim());
        PolynomialSphereDsh { embedding, inner }
    }

    /// The underlying embedding.
    pub fn embedding(&self) -> &ValiantEmbedding {
        &self.embedding
    }
}

impl DshFamily<[f64]> for PolynomialSphereDsh {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[f64]> {
        let pair = self.inner.sample(rng);
        let (s_data, s_query) = (pair.data, pair.query);
        let e1 = self.embedding.clone();
        let e2 = self.embedding.clone();
        HasherPair::from_fns(
            move |x: &[f64]| s_data.hash(e1.phi1_row(x).as_slice()),
            move |y: &[f64]| s_query.hash(e2.phi2_row(y).as_slice()),
        )
    }

    fn name(&self) -> String {
        format!("ValiantDsh[{}]", self.embedding.poly)
    }
}

impl AnalyticCpf for PolynomialSphereDsh {
    /// `arg` is the inner product `alpha in [-1, 1]`; CPF
    /// `sim(P(alpha)) = 1 - arccos(P(alpha)) / pi`.
    fn cpf(&self, alpha: f64) -> f64 {
        SimHash::sim(self.embedding.poly.eval(alpha))
    }
}

/// The normalized polynomials plotted in the paper's Figure 4.
///
/// Left pane: `t^2`, `-t^2`, `(-t^3 + t^2 - t)/3`; right pane:
/// `(2t^2 - 1)/3`, `(4t^3 - 3t)/7`, `(8t^4 - 8t^2 + 1)/17`,
/// `(16t^5 - 20t^3 + 5t)/41` (normalized Chebyshev polynomials).
pub fn figure4_polynomials() -> Vec<(&'static str, Polynomial)> {
    vec![
        ("t^2", Polynomial::new(vec![0.0, 0.0, 1.0])),
        ("-t^2", Polynomial::new(vec![0.0, 0.0, -1.0])),
        (
            "(-t^3 + t^2 - t)/3",
            Polynomial::new(vec![0.0, -1.0 / 3.0, 1.0 / 3.0, -1.0 / 3.0]),
        ),
        (
            "(2t^2 - 1)/3",
            Polynomial::new(vec![-1.0 / 3.0, 0.0, 2.0 / 3.0]),
        ),
        (
            "(4t^3 - 3t)/7",
            Polynomial::new(vec![0.0, -3.0 / 7.0, 0.0, 4.0 / 7.0]),
        ),
        (
            "(8t^4 - 8t^2 + 1)/17",
            Polynomial::new(vec![1.0 / 17.0, 0.0, -8.0 / 17.0, 0.0, 8.0 / 17.0]),
        ),
        (
            "(16t^5 - 20t^3 + 5t)/41",
            Polynomial::new(vec![0.0, 5.0 / 41.0, 0.0, -20.0 / 41.0, 0.0, 16.0 / 41.0]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::pair_with_inner_product;
    use dsh_core::estimate::CpfEstimator;
    use dsh_math::rng::seeded;

    #[test]
    fn tensor_power_basics() {
        assert_eq!(tensor_power(&[2.0, 3.0], 0), vec![1.0]);
        assert_eq!(tensor_power(&[2.0, 3.0], 1), vec![2.0, 3.0]);
        assert_eq!(tensor_power(&[2.0, 3.0], 2), vec![4.0, 6.0, 6.0, 9.0]);
        assert_eq!(tensor_power(&[2.0], 5), vec![32.0]);
    }

    #[test]
    fn tensor_power_inner_product_identity() {
        // <x^{(k)}, y^{(k)}> = <x, y>^k.
        let mut rng = seeded(131);
        let x = DenseVector::random_unit(&mut rng, 5);
        let y = DenseVector::random_unit(&mut rng, 5);
        for k in 0..4 {
            let xt = DenseVector::new(tensor_power(x.as_slice(), k));
            let yt = DenseVector::new(tensor_power(y.as_slice(), k));
            assert!((xt.dot(&yt) - x.dot(&y).powi(k as i32)).abs() < 1e-12);
        }
    }

    #[test]
    fn embedding_realizes_polynomial() {
        // <phi1(x), phi2(y)> = P(<x,y>) for every Figure 4 polynomial.
        let mut rng = seeded(132);
        let d = 5;
        for (name, p) in figure4_polynomials() {
            let emb = ValiantEmbedding::new(d, &p);
            for _ in 0..5 {
                let alpha = rngless_alpha(&mut rng);
                let (x, y) = pair_with_inner_product(&mut rng, d, alpha);
                let got = emb.phi1(&x).dot(&emb.phi2(&y));
                let want = p.eval(x.dot(&y));
                assert!((got - want).abs() < 1e-10, "{name}: got {got}, want {want}");
            }
        }
        fn rngless_alpha(rng: &mut dyn rand::Rng) -> f64 {
            rng.random::<f64>() * 1.8 - 0.9
        }
    }

    #[test]
    fn embeddings_are_unit_vectors() {
        let mut rng = seeded(133);
        let d = 4;
        for (_, p) in figure4_polynomials() {
            let emb = ValiantEmbedding::new(d, &p);
            let x = DenseVector::random_unit(&mut rng, d);
            assert!((emb.phi1(&x).norm() - 1.0).abs() < 1e-10);
            assert!((emb.phi2(&x).norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn cpf_matches_monte_carlo_for_t_squared() {
        let d = 5;
        let fam = PolynomialSphereDsh::new(d, &Polynomial::new(vec![0.0, 0.0, 1.0]));
        let mut rng = seeded(134);
        let alphas = [-0.7, 0.0, 0.7];
        let pairs: Vec<_> = alphas
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a))
            .collect();
        let ests = CpfEstimator::new(40_000, 135).estimate_curve(&fam, &pairs);
        for (est, &alpha) in ests.iter().zip(&alphas) {
            let want = fam.cpf(alpha);
            assert!(
                est.contains(want),
                "alpha {alpha}: want {want:.4}, got {}",
                est.estimate
            );
        }
        // CPF is symmetric in alpha for the even polynomial t^2.
        assert!((fam.cpf(0.5) - fam.cpf(-0.5)).abs() < 1e-12);
    }

    #[test]
    fn negative_polynomial_flips_the_curve() {
        let d = 4;
        let plus = PolynomialSphereDsh::new(d, &Polynomial::new(vec![0.0, 0.0, 1.0]));
        let minus = PolynomialSphereDsh::new(d, &Polynomial::new(vec![0.0, 0.0, -1.0]));
        // sim(-v) = 1 - sim(v).
        for &alpha in &[-0.8, 0.0, 0.6] {
            assert!((plus.cpf(alpha) + minus.cpf(alpha) - 1.0).abs() < 1e-12);
        }
        // -t^2 gives a CPF maximized at alpha = 0 (orthogonal vectors!) —
        // the hyperplane-query shape of §6.1.
        assert!(minus.cpf(0.0) > minus.cpf(0.7));
        assert!(minus.cpf(0.0) > minus.cpf(-0.7));
    }

    #[test]
    fn chebyshev_cpf_estimate() {
        // (2t^2-1)/3: mixed-sign coefficients exercise both weight maps.
        let d = 4;
        let p = Polynomial::new(vec![-1.0 / 3.0, 0.0, 2.0 / 3.0]);
        let fam = PolynomialSphereDsh::new(d, &p);
        let mut rng = seeded(136);
        let (x, y) = pair_with_inner_product(&mut rng, d, 0.5);
        let est = CpfEstimator::new(40_000, 137).estimate_pair(&fam, &x, &y);
        assert!(
            est.contains(fam.cpf(0.5)),
            "want {}, got {}",
            fam.cpf(0.5),
            est.estimate
        );
    }

    #[test]
    #[should_panic(expected = "sum |a_i| = 1")]
    fn unnormalized_polynomial_rejected() {
        let _ = ValiantEmbedding::new(4, &Polynomial::new(vec![0.0, 2.0]));
    }

    #[test]
    fn embedded_dim_accounting() {
        // P = (t + t^3)/2 over d = 3: D = 3 + 27 = 30.
        let emb = ValiantEmbedding::new(3, &Polynomial::new(vec![0.0, 0.5, 0.0, 0.5]));
        assert_eq!(emb.embedded_dim(), 30);
        assert_eq!(emb.input_dim(), 3);
    }
}
