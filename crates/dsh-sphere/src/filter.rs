//! Gaussian filter DSH families `D+` and `D-` (paper §2.2, Appendix A.1).
//!
//! A pair `(h, g)` is defined by a sequence `z_1, ..., z_m` of i.i.d.
//! Gaussian vectors ("spherical caps"): `h(x)` is the index of the first
//! `z_i` with `<z_i, x> >= t` (and `m + 1` if none), `g` likewise with
//! sentinel `m + 2`. `D+` keeps `g` on the same caps; `D-` negates the
//! query (`<z_i, y> <= -t`), which makes the CPF *decreasing* in the inner
//! product.
//!
//! Exact CPF (first-index argument of Appendix A.1): with
//! `p_and(alpha) = Pr[<z,x> >= t, <z,y> >= t]` (an orthant probability of
//! correlated normals) and `p_or = 2 Pr[Z >= t] - p_and`,
//!
//! ```text
//! f(alpha) = (1 - (1 - p_or)^m) * p_and / p_or
//! ```
//!
//! The number of caps is `m = ceil(2 t^3 / p')` with `p'` the Szarek–Werner
//! lower bound on `Pr[Z >= t]`, making the no-cap probability at most
//! `e^{-2 t^3}` (Lemma A.5); the sampling/evaluation cost is
//! `O(d t^4 e^{t^2/2})`.
//!
//! Implementation note: the caps are generated lazily from a per-function
//! seed (cap `i` is the Gaussian stream of `child(seed, i)`), so evaluating
//! a hash touches only the expected `O(1/Pr[Z >= t])` caps actually scanned
//! instead of materializing all `m` — the function is still a fixed,
//! deterministic object once sampled, exactly as the paper requires.

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair, PointHasher};
use dsh_math::{bivariate, normal, rng};
use rand::Rng;

/// Maximum `m` we allow before refusing to construct the family (keeps
/// accidental `t = 6` experiments from running forever).
const MAX_FILTERS: usize = 200_000_000;

/// Number of caps `m = ceil(2 t^3 / p')` from Lemma A.5.
pub fn suggested_filter_count(t: f64) -> usize {
    assert!(t > 0.0, "threshold must be positive");
    let p_prime = normal::tail_lower_bound(t);
    let m = (2.0 * t.powi(3) / p_prime).ceil();
    assert!(
        m <= MAX_FILTERS as f64,
        "t = {t} needs m = {m} filters; too large"
    );
    (m as usize).max(1)
}

/// A sampled filter hash function: scans caps in order and returns the
/// index of the first hit, or `m + sentinel` on miss.
struct FilterHasher {
    seed: u64,
    t: f64,
    m: usize,
    negate: bool,
    sentinel: u64,
}

impl PointHasher<[f64]> for FilterHasher {
    fn hash(&self, xs: &[f64]) -> u64 {
        for i in 0..self.m {
            let mut cap = rng::GaussianStream::new(rng::derive_seed(self.seed, i as u64));
            let mut dot = 0.0;
            for &c in xs {
                dot += c * cap.next();
            }
            let hit = if self.negate {
                dot <= -self.t
            } else {
                dot >= self.t
            };
            if hit {
                return i as u64;
            }
        }
        self.m as u64 + self.sentinel
    }
}

/// The increasing-CPF filter family `D+` (both sides use caps
/// `<z, .> >= t`).
#[derive(Debug, Clone, Copy)]
pub struct FilterDshPlus {
    d: usize,
    t: f64,
    m: usize,
}

/// The decreasing-CPF (anti-LSH) filter family `D-`: the query side uses
/// the diametrically opposite caps `<z, .> <= -t`.
#[derive(Debug, Clone, Copy)]
pub struct FilterDshMinus {
    d: usize,
    t: f64,
    m: usize,
}

impl FilterDshPlus {
    /// Family over `S^{d-1}` with threshold `t` and the Lemma A.5 filter
    /// count.
    pub fn new(d: usize, t: f64) -> Self {
        Self::with_filter_count(d, t, suggested_filter_count(t))
    }

    /// Explicit filter count (for ablations).
    pub fn with_filter_count(d: usize, t: f64, m: usize) -> Self {
        assert!(d > 0 && t > 0.0 && m > 0);
        FilterDshPlus { d, t, m }
    }

    /// Threshold parameter.
    pub fn threshold(&self) -> f64 {
        self.t
    }

    /// Dimension of the sphere's ambient space.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of caps `m`.
    pub fn filter_count(&self) -> usize {
        self.m
    }

    /// Leading-order prediction of Theorem A.6:
    /// `ln(1/f(alpha)) ~ ((1 - alpha)/(1 + alpha)) t^2 / 2`.
    pub fn theoretical_ln_inv_cpf(t: f64, alpha: f64) -> f64 {
        (1.0 - alpha) / (1.0 + alpha) * t * t / 2.0
    }

    /// The Lemma A.5 closed-form *upper* bound on the CPF.
    pub fn cpf_upper_bound(&self, alpha: f64) -> f64 {
        lemma_a5_upper(self.t, alpha)
    }

    /// The Lemma A.5 closed-form *lower* bound on the CPF.
    pub fn cpf_lower_bound(&self, alpha: f64) -> f64 {
        lemma_a5_lower(self.t, alpha)
    }
}

impl FilterDshMinus {
    /// Family over `S^{d-1}` with threshold `t` and the Lemma A.5 filter
    /// count.
    pub fn new(d: usize, t: f64) -> Self {
        Self::with_filter_count(d, t, suggested_filter_count(t))
    }

    /// Explicit filter count (for ablations).
    pub fn with_filter_count(d: usize, t: f64, m: usize) -> Self {
        assert!(d > 0 && t > 0.0 && m > 0);
        FilterDshMinus { d, t, m }
    }

    /// Threshold parameter.
    pub fn threshold(&self) -> f64 {
        self.t
    }

    /// Dimension of the sphere's ambient space.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of caps `m`.
    pub fn filter_count(&self) -> usize {
        self.m
    }

    /// Leading-order prediction of Theorem 1.2:
    /// `ln(1/f(alpha)) ~ ((1 + alpha)/(1 - alpha)) t^2 / 2`.
    pub fn theoretical_ln_inv_cpf(t: f64, alpha: f64) -> f64 {
        (1.0 + alpha) / (1.0 - alpha) * t * t / 2.0
    }

    /// Lemma A.5 upper bound transported through `f_-(alpha) = f_+(-alpha)`
    /// (Lemma A.1).
    pub fn cpf_upper_bound(&self, alpha: f64) -> f64 {
        lemma_a5_upper(self.t, -alpha)
    }

    /// Lemma A.5 lower bound transported through `f_-(alpha) = f_+(-alpha)`.
    pub fn cpf_lower_bound(&self, alpha: f64) -> f64 {
        lemma_a5_lower(self.t, -alpha)
    }
}

/// Exact CPF of the first-hit process given the per-cap hit probabilities.
fn first_hit_cpf(p_and: f64, p_single: f64, m: usize) -> f64 {
    let p_or = 2.0 * p_single - p_and;
    if p_or <= 0.0 {
        return 0.0;
    }
    let some_hit = 1.0 - (1.0 - p_or).powi(m as i32);
    (some_hit * p_and / p_or).clamp(0.0, 1.0)
}

/// Lemma A.5 upper bound `f_+(alpha) < (1/sqrt(2 pi)) ((t+1)/t^2)
/// ((1+alpha)^2 / sqrt(1-alpha^2)) exp(-((1-alpha)/(1+alpha)) t^2/2)`.
fn lemma_a5_upper(t: f64, alpha: f64) -> f64 {
    assert!(alpha > -1.0 && alpha < 1.0);
    (t + 1.0) / (t * t) / (2.0 * std::f64::consts::PI).sqrt() * (1.0 + alpha).powi(2)
        / (1.0 - alpha * alpha).sqrt()
        * (-(1.0 - alpha) / (1.0 + alpha) * t * t / 2.0).exp()
}

/// Lemma A.5 lower bound, rederived.
///
/// **Reproduction note.** The bound as printed in the paper reads
/// `f_+ > correction * (t/(t+1)) * fbar_+ - 2 e^{-t^3}`, but retracing the
/// proof (`f >= Pr[and] / (2 Pr[single]) - Pr[miss]`, lower-bounding
/// `Pr[and]` by Savage and upper-bounding `Pr[single]` by Szarek–Werner)
/// produces an extra factor 1/2 that the printed statement drops: the
/// denominator is `2 Pr[single]`, not `Pr[single]`. Numerically the exact
/// CPF violates the printed bound (e.g. `t = 2`, `alpha = 0`: exact
/// 0.0115 < printed 0.0128) and satisfies the corrected one (0.0061).
/// We implement the corrected bound; the asymptotic content of
/// Theorem 1.2 is unaffected (the factor 2 is absorbed by `Theta(log t)`).
fn lemma_a5_lower(t: f64, alpha: f64) -> f64 {
    let correction = 1.0 - (2.0 - alpha) * (1.0 + alpha) / ((1.0 - alpha) * t * t);
    (0.5 * correction * t / (t + 1.0) * lemma_a5_upper(t, alpha) - 2.0 * (-t.powi(3)).exp())
        .max(0.0)
}

impl DshFamily<[f64]> for FilterDshPlus {
    fn sample(&self, rng_in: &mut dyn Rng) -> HasherPair<[f64]> {
        let seed = rng_in.next_u64();
        HasherPair::new(
            FilterHasher {
                seed,
                t: self.t,
                m: self.m,
                negate: false,
                sentinel: 1,
            },
            FilterHasher {
                seed,
                t: self.t,
                m: self.m,
                negate: false,
                sentinel: 2,
            },
        )
    }

    fn name(&self) -> String {
        format!("FilterD+(t={:.2}, m={})", self.t, self.m)
    }
}

impl DshFamily<[f64]> for FilterDshMinus {
    fn sample(&self, rng_in: &mut dyn Rng) -> HasherPair<[f64]> {
        let seed = rng_in.next_u64();
        HasherPair::new(
            FilterHasher {
                seed,
                t: self.t,
                m: self.m,
                negate: false,
                sentinel: 1,
            },
            FilterHasher {
                seed,
                t: self.t,
                m: self.m,
                negate: true,
                sentinel: 2,
            },
        )
    }

    fn name(&self) -> String {
        format!("FilterD-(t={:.2}, m={})", self.t, self.m)
    }
}

impl AnalyticCpf for FilterDshPlus {
    /// `arg` is the inner product `alpha in (-1, 1)`; exact CPF from
    /// bivariate orthant probabilities.
    fn cpf(&self, alpha: f64) -> f64 {
        assert!(alpha > -1.0 && alpha < 1.0);
        let p_and = bivariate::same_orthant(self.t, alpha);
        first_hit_cpf(p_and, normal::tail(self.t), self.m)
    }
}

impl AnalyticCpf for FilterDshMinus {
    /// `arg` is the inner product `alpha in (-1, 1)`; exact CPF from
    /// bivariate orthant probabilities (Lemma A.1: `f_-(a) = f_+(-a)`).
    fn cpf(&self, alpha: f64) -> f64 {
        assert!(alpha > -1.0 && alpha < 1.0);
        let p_and = bivariate::opposite_orthant(self.t, alpha);
        first_hit_cpf(p_and, normal::tail(self.t), self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::pair_with_inner_product;
    use dsh_core::estimate::CpfEstimator;
    use dsh_core::points::DenseVector;
    use dsh_math::rng::seeded;

    #[test]
    fn filter_count_formula() {
        // m = ceil(2 t^3 / p') with p' the Szarek-Werner lower bound.
        let t: f64 = 1.5;
        let p_prime = normal::tail_lower_bound(t);
        assert_eq!(
            suggested_filter_count(t),
            (2.0 * t.powi(3) / p_prime).ceil() as usize
        );
        // Grows like t^4 e^{t^2/2}.
        assert!(suggested_filter_count(2.5) > suggested_filter_count(1.5));
    }

    #[test]
    fn plus_cpf_matches_monte_carlo() {
        let d = 12;
        let t = 1.2;
        let fam = FilterDshPlus::new(d, t);
        let mut rng = seeded(111);
        let alphas = [-0.5, 0.0, 0.6];
        let pairs: Vec<_> = alphas
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a))
            .collect();
        let ests = CpfEstimator::new(4000, 112).estimate_curve(&fam, &pairs);
        for (est, &alpha) in ests.iter().zip(&alphas) {
            let want = fam.cpf(alpha);
            assert!(
                est.contains(want),
                "alpha {alpha}: want {want:.4}, got {} [{}, {}]",
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn minus_cpf_matches_monte_carlo() {
        let d = 12;
        let t = 1.2;
        let fam = FilterDshMinus::new(d, t);
        let mut rng = seeded(113);
        let alphas = [-0.6, 0.0, 0.5];
        let pairs: Vec<_> = alphas
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a))
            .collect();
        let ests = CpfEstimator::new(4000, 114).estimate_curve(&fam, &pairs);
        for (est, &alpha) in ests.iter().zip(&alphas) {
            let want = fam.cpf(alpha);
            assert!(
                est.contains(want),
                "alpha {alpha}: want {want:.4}, got {}",
                est.estimate
            );
        }
    }

    #[test]
    fn minus_is_mirror_of_plus() {
        let plus = FilterDshPlus::new(8, 1.5);
        let minus = FilterDshMinus::new(8, 1.5);
        for &alpha in &[-0.7, -0.2, 0.0, 0.4, 0.8] {
            assert!((plus.cpf(alpha) - minus.cpf(-alpha)).abs() < 1e-12);
        }
    }

    #[test]
    fn plus_increasing_minus_decreasing() {
        let plus = FilterDshPlus::new(8, 1.8);
        let minus = FilterDshMinus::new(8, 1.8);
        let mut prev_p = 0.0;
        let mut prev_m = 1.0;
        for i in 0..=10 {
            let alpha = -0.9 + 0.18 * i as f64;
            let p = plus.cpf(alpha);
            let m = minus.cpf(alpha);
            assert!(p >= prev_p - 1e-12, "plus not increasing at {alpha}");
            assert!(m <= prev_m + 1e-12, "minus not decreasing at {alpha}");
            prev_p = p;
            prev_m = m;
        }
    }

    #[test]
    fn lemma_a5_envelope_contains_exact_cpf() {
        for &t in &[2.0, 2.5, 3.0] {
            let m = suggested_filter_count(t);
            let fam = FilterDshPlus::with_filter_count(8, t, m);
            for &alpha in &[-0.3, 0.0, 0.3, 0.6] {
                let exact = fam.cpf(alpha);
                let hi = fam.cpf_upper_bound(alpha);
                let lo = fam.cpf_lower_bound(alpha);
                assert!(
                    exact <= hi * (1.0 + 1e-9),
                    "t={t} a={alpha}: {exact} > {hi}"
                );
                assert!(
                    exact >= lo * (1.0 - 1e-9),
                    "t={t} a={alpha}: {exact} < {lo}"
                );
            }
        }
    }

    #[test]
    fn theorem_1_2_asymptotics() {
        // ln(1/f(alpha)) = ((1+alpha)/(1-alpha)) t^2/2 + Theta(log t): the
        // deviation from the leading term should be bounded by C log t for
        // a modest constant across t.
        for &t in &[2.0f64, 3.0, 4.0] {
            let fam = FilterDshMinus::new(8, t);
            for &alpha in &[-0.4f64, 0.0, 0.4] {
                if alpha.abs() >= 1.0 - 1.0 / t {
                    continue;
                }
                let exact = -fam.cpf(alpha).ln();
                let lead = FilterDshMinus::theoretical_ln_inv_cpf(t, alpha);
                let dev = (exact - lead).abs();
                assert!(
                    dev <= 6.0 * t.ln() + 6.0,
                    "t={t} alpha={alpha}: ln(1/f)={exact:.3}, lead={lead:.3}, dev={dev:.3}"
                );
            }
        }
    }

    #[test]
    fn miss_probability_is_tiny() {
        // With the Lemma A.5 filter count the probability that a point hits
        // no cap is at most e^{-2 t^3}; check via the complement of the
        // first-hit normalization at alpha ~ 1 (where p_or ~ p_single).
        let t = 1.5f64;
        let m = suggested_filter_count(t) as f64;
        let miss = (1.0 - normal::tail(t)).powf(m);
        assert!(miss <= (-2.0 * t.powi(3)).exp() * 1.01, "miss {miss}");
    }

    #[test]
    fn hashers_are_deterministic_given_sample() {
        let fam = FilterDshMinus::new(6, 1.0);
        let mut rng = seeded(115);
        let pair = fam.sample(&mut rng);
        let x = DenseVector::random_unit(&mut rng, 6);
        assert_eq!(pair.data.hash(x.as_slice()), pair.data.hash(x.as_slice()));
        assert_eq!(pair.query.hash(x.as_slice()), pair.query.hash(x.as_slice()));
    }

    #[test]
    fn sentinels_prevent_false_collisions() {
        // With a tiny m, both sides often miss; h returns m+1, g returns
        // m+2, which must not collide.
        let fam = FilterDshPlus::with_filter_count(6, 4.0, 2);
        let mut rng = seeded(116);
        let (x, y) = pair_with_inner_product(&mut rng, 6, 0.9);
        for _ in 0..200 {
            let pair = fam.sample(&mut rng);
            let hx = pair.data.hash(x.as_slice());
            let gy = pair.query.hash(y.as_slice());
            if hx >= 2 && gy >= 2 {
                assert_ne!(hx, gy);
            }
        }
    }
}
