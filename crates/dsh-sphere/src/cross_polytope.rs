//! Cross-polytope LSH and its negated-query DSH variant (paper §2.1).
//!
//! `CP+` (Andoni, Indyk, Laarhoven, Razenshteyn, Schmidt): apply a random
//! Gaussian matrix `A` and hash `x` to the closest signed standard basis
//! vector of `A x` — i.e. the coordinate of maximum absolute value,
//! together with its sign. Theorem 2.1 (reproduced from \[8\]):
//!
//! ```text
//! ln(1/f(alpha)) = ((1 - alpha)/(1 + alpha)) ln d + O_alpha(ln ln d).
//! ```
//!
//! `CP-` negates the query point before hashing (Corollary 2.2), flipping
//! the exponent to `((1 + alpha)/(1 - alpha)) ln d` — a *decreasing* CPF in
//! the similarity, i.e. an anti-LSH. This matches the Theorem 1.2 filter
//! construction with `t = sqrt(2 ln d)`.

use crate::geometry::GaussianMatrix;
use dsh_core::family::{DshFamily, HasherPair};

use rand::Rng;

/// Hash a rotated vector to its closest signed basis vector:
/// `2 * argmax_i |v_i| + [v_i < 0]`.
fn closest_polytope_vertex(v: &[f64]) -> u64 {
    let mut best = 0usize;
    let mut best_abs = -1.0f64;
    for (i, &c) in v.iter().enumerate() {
        if c.abs() > best_abs {
            best_abs = c.abs();
            best = i;
        }
    }
    2 * best as u64 + (v[best] < 0.0) as u64
}

/// Symmetric cross-polytope LSH `CP+`; CPF increasing in the inner product.
#[derive(Debug, Clone, Copy)]
pub struct CrossPolytopeLsh {
    d: usize,
}

impl CrossPolytopeLsh {
    /// Family over unit vectors in `R^d`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        CrossPolytopeLsh { d }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Leading-order theoretical value of `ln(1/f(alpha))` from
    /// Theorem 2.1: `((1 - alpha)/(1 + alpha)) ln d`.
    pub fn theoretical_ln_inv_cpf(d: usize, alpha: f64) -> f64 {
        assert!(alpha > -1.0 && alpha < 1.0);
        (1.0 - alpha) / (1.0 + alpha) * (d as f64).ln()
    }
}

impl DshFamily<[f64]> for CrossPolytopeLsh {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[f64]> {
        let a = GaussianMatrix::sample(rng, self.d, self.d);
        let b = a.clone();
        HasherPair::from_fns(
            move |x: &[f64]| closest_polytope_vertex(&a.apply(x)),
            move |y: &[f64]| closest_polytope_vertex(&b.apply(y)),
        )
    }

    fn name(&self) -> String {
        format!("CrossPolytope+(d={})", self.d)
    }
}

/// Anti-LSH cross-polytope family `CP-` (§2.1): the query point is negated
/// before hashing, so the CPF *decreases* in the inner product
/// (Corollary 2.2). Identical points almost never collide; antipodal points
/// always do.
#[derive(Debug, Clone, Copy)]
pub struct CrossPolytopeAnti {
    d: usize,
}

impl CrossPolytopeAnti {
    /// Family over unit vectors in `R^d`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        CrossPolytopeAnti { d }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Leading-order theoretical value of `ln(1/f(alpha))` from
    /// Corollary 2.2: `((1 + alpha)/(1 - alpha)) ln d`.
    pub fn theoretical_ln_inv_cpf(d: usize, alpha: f64) -> f64 {
        assert!(alpha > -1.0 && alpha < 1.0);
        (1.0 + alpha) / (1.0 - alpha) * (d as f64).ln()
    }
}

impl DshFamily<[f64]> for CrossPolytopeAnti {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[f64]> {
        let a = GaussianMatrix::sample(rng, self.d, self.d);
        let b = a.clone();
        HasherPair::from_fns(
            move |x: &[f64]| closest_polytope_vertex(&a.apply(x)),
            move |y: &[f64]| {
                let neg: Vec<f64> = y.iter().map(|c| -c).collect();
                closest_polytope_vertex(&b.apply(&neg))
            },
        )
    }

    fn name(&self) -> String {
        format!("CrossPolytope-(d={})", self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::pair_with_inner_product;
    use dsh_core::estimate::CpfEstimator;
    use dsh_core::points::DenseVector;
    use dsh_math::rng::seeded;

    #[test]
    fn vertex_encoding() {
        assert_eq!(closest_polytope_vertex(&[3.0, -1.0, 2.0]), 0);
        assert_eq!(closest_polytope_vertex(&[-3.0, -1.0, 2.0]), 1);
        assert_eq!(closest_polytope_vertex(&[0.5, -1.0, 0.2]), 3);
        assert_eq!(closest_polytope_vertex(&[0.0, 0.0, 0.1]), 4);
    }

    #[test]
    fn identical_points_always_collide_in_cp_plus() {
        let fam = CrossPolytopeLsh::new(12);
        let mut rng = seeded(91);
        let x = DenseVector::random_unit(&mut rng, 12);
        for _ in 0..30 {
            assert!(fam.sample(&mut rng).collides(&x, &x));
        }
    }

    #[test]
    fn antipodal_points_always_collide_in_cp_minus() {
        let fam = CrossPolytopeAnti::new(12);
        let mut rng = seeded(92);
        let x = DenseVector::random_unit(&mut rng, 12);
        let neg = x.negated();
        for _ in 0..30 {
            assert!(fam.sample(&mut rng).collides(&x, &neg));
        }
    }

    #[test]
    fn identical_points_rarely_collide_in_cp_minus() {
        let fam = CrossPolytopeAnti::new(16);
        let mut rng = seeded(93);
        let x = DenseVector::random_unit(&mut rng, 16);
        let est = CpfEstimator::new(3000, 94).estimate_pair(&fam, &x, &x);
        // f(1) = 0 in the limit; with d = 16 it should be very small.
        assert!(est.estimate < 0.01, "got {}", est.estimate);
    }

    #[test]
    fn random_points_collide_with_probability_one_over_2d() {
        // At alpha = 0 the two rotated vectors are independent, so the
        // query lands on each of the 2d vertices with equal probability.
        let d = 8;
        let fam = CrossPolytopeLsh::new(d);
        let mut rng = seeded(95);
        let (x, y) = pair_with_inner_product(&mut rng, d, 0.0);
        let est = CpfEstimator::new(40_000, 96).estimate_pair(&fam, &x, &y);
        assert!(
            est.contains(1.0 / (2.0 * d as f64)),
            "got {} want {}",
            est.estimate,
            1.0 / (2.0 * d as f64)
        );
    }

    #[test]
    fn cp_minus_mirrors_cp_plus() {
        // f_-(alpha) = f_+(-alpha): estimate both at alpha = 0.5.
        let d = 8;
        let mut rng = seeded(97);
        let (x, y) = pair_with_inner_product(&mut rng, d, 0.5);
        let (u, v) = pair_with_inner_product(&mut rng, d, -0.5);
        let plus = CpfEstimator::new(40_000, 98).estimate_pair(&CrossPolytopeLsh::new(d), &u, &v);
        let minus = CpfEstimator::new(40_000, 99).estimate_pair(&CrossPolytopeAnti::new(d), &x, &y);
        // Same distribution: intervals overlap generously.
        assert!(
            minus.lo <= plus.hi + 0.01 && plus.lo <= minus.hi + 0.01,
            "plus {} vs minus {}",
            plus.estimate,
            minus.estimate
        );
    }

    #[test]
    fn cpf_monotone_decreasing_for_anti() {
        let d = 8;
        let fam = CrossPolytopeAnti::new(d);
        let mut rng = seeded(100);
        let pairs: Vec<_> = [-0.7, 0.0, 0.7]
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a))
            .collect();
        let ests = CpfEstimator::new(30_000, 101).estimate_curve(&fam, &pairs);
        assert!(
            ests[0].estimate > ests[1].estimate && ests[1].estimate > ests[2].estimate,
            "{} > {} > {} expected",
            ests[0].estimate,
            ests[1].estimate,
            ests[2].estimate
        );
    }

    #[test]
    fn theoretical_exponents_are_mirror_images() {
        let d = 256;
        for &alpha in &[-0.5, 0.0, 0.5] {
            let plus = CrossPolytopeLsh::theoretical_ln_inv_cpf(d, alpha);
            let minus = CrossPolytopeAnti::theoretical_ln_inv_cpf(d, -alpha);
            assert!((plus - minus).abs() < 1e-12);
        }
        // At alpha = 0 both are ln d.
        assert!((CrossPolytopeLsh::theoretical_ln_inv_cpf(d, 0.0) - (d as f64).ln()).abs() < 1e-12);
    }
}
