//! TensorSketch approximation of the Valiant embeddings.
//!
//! The paper remarks (after Theorem 5.1) that the `O(d^k)` cost of the
//! explicit embedding can be avoided with kernel approximation methods
//! [Pham–Pagh, KDD'13]: sketch `x^{(k)}` as the FFT-based circular
//! convolution of `k` independent CountSketches of `x`, so that
//! `<TS_k(x), TS_k(y)> ~= <x, y>^k` in time `O(k (d + m log m))` and
//! dimension `m` instead of `d^k`.

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair};
use dsh_math::fft::circular_convolution_rows;
use dsh_math::Polynomial;
use rand::Rng;

use crate::simhash::SimHash;

/// A CountSketch: a random 2-wise style hash `h : [d] -> [m]` and signs
/// `s : [d] -> {-1, +1}` (materialized as tables; we sample them truly
/// randomly, which is stronger than 2-wise).
#[derive(Debug, Clone)]
pub struct CountSketch {
    buckets: Vec<usize>,
    signs: Vec<f64>,
    m: usize,
}

impl CountSketch {
    /// Sample a CountSketch from `R^d` to `R^m` (`m` a power of two so the
    /// FFT combination applies).
    pub fn sample(rng: &mut dyn Rng, d: usize, m: usize) -> Self {
        assert!(m.is_power_of_two(), "sketch size must be a power of two");
        CountSketch {
            buckets: (0..d).map(|_| rng.random_range(0..m)).collect(),
            signs: (0..d)
                .map(|_| if rng.random_bool(0.5) { 1.0 } else { -1.0 })
                .collect(),
            m,
        }
    }

    /// Apply to a vector.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.m];
        self.apply_into(x, &mut out);
        out
    }

    /// Allocation-free [`CountSketch::apply`]: accumulate into a zeroed
    /// caller-provided buffer of length `m`.
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.buckets.len(), "dimension mismatch");
        assert_eq!(out.len(), self.m, "output buffer must have length m");
        out.fill(0.0);
        for (j, &v) in x.iter().enumerate() {
            out[self.buckets[j]] += self.signs[j] * v;
        }
    }
}

/// A sampled TensorSketch of fixed degree `k`: `k` independent
/// CountSketches combined by circular convolution.
#[derive(Debug, Clone)]
pub struct TensorSketch {
    sketches: Vec<CountSketch>,
    m: usize,
}

impl TensorSketch {
    /// Sample a degree-`k` TensorSketch from `R^d` to `R^m`.
    pub fn sample(rng: &mut dyn Rng, d: usize, k: usize, m: usize) -> Self {
        assert!(k >= 1);
        TensorSketch {
            sketches: (0..k).map(|_| CountSketch::sample(rng, d, m)).collect(),
            m,
        }
    }

    /// Degree `k`.
    pub fn degree(&self) -> usize {
        self.sketches.len()
    }

    /// Sketch a vector: approximates the flattened tensor power `x^{(k)}`.
    ///
    /// The `k` CountSketches are written into one flat `k * m` scratch
    /// buffer and combined by FFT convolution over its rows — one
    /// allocation instead of the former per-call `Vec<Vec<f64>>`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        if self.sketches.len() == 1 {
            return self.sketches[0].apply(x);
        }
        let mut scratch = vec![0.0; self.sketches.len() * self.m];
        for (cs, row) in self.sketches.iter().zip(scratch.chunks_exact_mut(self.m)) {
            cs.apply_into(x, row);
        }
        circular_convolution_rows(&scratch, self.m)
    }

    /// Sketch dimension `m`.
    pub fn dim(&self) -> usize {
        self.m
    }
}

/// A sketched version of the Theorem 5.1 family: SimHash applied to
/// CountSketch/TensorSketch approximations of Valiant's `phi_1, phi_2`.
///
/// The CPF approaches `sim(P(alpha))` as the sketch size `m` grows; the
/// approximation error contributes `O(1/sqrt(m))` noise to the inner
/// product before the `sim` map.
pub struct SketchedPolynomialSphereDsh {
    poly: Polynomial,
    d: usize,
    m: usize,
    sketch_dim: usize,
}

impl SketchedPolynomialSphereDsh {
    /// Build for unit vectors in `R^d`, polynomial `p` with
    /// `sum |a_i| = 1`, and per-monomial sketch size `m` (power of two).
    pub fn new(d: usize, p: &Polynomial, m: usize) -> Self {
        assert!((p.abs_coeff_sum() - 1.0).abs() < 1e-9, "need sum |a_i| = 1");
        assert!(m.is_power_of_two());
        let active: usize = p.coeffs().iter().skip(1).filter(|&&c| c != 0.0).count();
        let constant = if p.coeff(0) != 0.0 { 1 } else { 0 };
        SketchedPolynomialSphereDsh {
            poly: p.clone(),
            d,
            m,
            sketch_dim: constant + active * m,
        }
    }

    /// Total sketched embedding dimension.
    pub fn sketch_dim(&self) -> usize {
        self.sketch_dim
    }
}

impl DshFamily<[f64]> for SketchedPolynomialSphereDsh {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[f64]> {
        // One TensorSketch per active monomial degree (shared between the
        // two sides so that inner products are preserved).
        let mut sketches: Vec<(usize, f64, TensorSketch)> = Vec::new();
        let mut constant: Option<f64> = None;
        for (i, &a) in self.poly.coeffs().iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            if i == 0 {
                constant = Some(a);
            } else {
                sketches.push((i, a, TensorSketch::sample(rng, self.d, i, self.m)));
            }
        }
        let sim = SimHash::new(self.sketch_dim);
        let pair = sim.sample(rng);
        let (s_data, s_query) = (pair.data, pair.query);
        let sketches = std::sync::Arc::new(sketches);
        let sk1 = sketches.clone();
        let sk2 = sketches;
        let (c1, c2) = (constant, constant);
        HasherPair::from_fns(
            move |x: &[f64]| {
                let mut v = Vec::new();
                if let Some(a) = c1 {
                    v.push(a.abs().sqrt());
                }
                for (_, a, ts) in sk1.iter() {
                    let w = a.abs().sqrt();
                    v.extend(ts.apply(x).into_iter().map(|u| u * w));
                }
                s_data.hash(&v)
            },
            move |y: &[f64]| {
                let mut v = Vec::new();
                if let Some(a) = c2 {
                    v.push(a / a.abs().sqrt());
                }
                for (_, a, ts) in sk2.iter() {
                    let w = a / a.abs().sqrt();
                    v.extend(ts.apply(y).into_iter().map(|u| u * w));
                }
                s_query.hash(&v)
            },
        )
    }

    fn name(&self) -> String {
        format!("SketchedValiant[{}; m={}]", self.poly, self.m)
    }
}

impl AnalyticCpf for SketchedPolynomialSphereDsh {
    /// The *target* CPF `sim(P(alpha))`; the realized CPF deviates by the
    /// sketching error `O(1/sqrt(m))` inside the `sim` map.
    fn cpf(&self, alpha: f64) -> f64 {
        SimHash::sim(self.poly.eval(alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::pair_with_inner_product;
    use dsh_core::estimate::CpfEstimator;
    use dsh_core::points::DenseVector;
    use dsh_math::rng::seeded;
    use dsh_math::stats::mean;

    #[test]
    fn count_sketch_preserves_inner_products_in_expectation() {
        let mut rng = seeded(141);
        let d = 30;
        let x = DenseVector::random_unit(&mut rng, d);
        let y = DenseVector::random_unit(&mut rng, d);
        let want = x.dot(&y);
        let samples: Vec<f64> = (0..300)
            .map(|_| {
                let cs = CountSketch::sample(&mut rng, d, 64);
                DenseVector::new(cs.apply(x.as_slice()))
                    .dot(&DenseVector::new(cs.apply(y.as_slice())))
            })
            .collect();
        assert!(
            (mean(&samples) - want).abs() < 0.05,
            "{} vs {want}",
            mean(&samples)
        );
    }

    #[test]
    fn tensor_sketch_approximates_powered_inner_products() {
        let mut rng = seeded(142);
        let d = 20;
        let (x, y) = pair_with_inner_product(&mut rng, d, 0.6);
        for k in 2..=3usize {
            let want = 0.6f64.powi(k as i32);
            let samples: Vec<f64> = (0..200)
                .map(|_| {
                    let ts = TensorSketch::sample(&mut rng, d, k, 256);
                    DenseVector::new(ts.apply(x.as_slice()))
                        .dot(&DenseVector::new(ts.apply(y.as_slice())))
                })
                .collect();
            let m = mean(&samples);
            assert!((m - want).abs() < 0.05, "k={k}: {m} vs {want}");
        }
    }

    #[test]
    fn tensor_sketch_norm_is_approximately_preserved() {
        let mut rng = seeded(143);
        let d = 16;
        let x = DenseVector::random_unit(&mut rng, d);
        let samples: Vec<f64> = (0..200)
            .map(|_| {
                let ts = TensorSketch::sample(&mut rng, d, 2, 256);
                DenseVector::new(ts.apply(x.as_slice())).norm().powi(2)
            })
            .collect();
        assert!((mean(&samples) - 1.0).abs() < 0.05, "{}", mean(&samples));
    }

    #[test]
    fn sketched_cpf_close_to_exact() {
        // Compare the sketched family's measured CPF to the target
        // sim(P(alpha)) — they agree up to sketching noise.
        let d = 10;
        let p = Polynomial::new(vec![0.0, 0.0, 1.0]); // t^2
        let fam = SketchedPolynomialSphereDsh::new(d, &p, 512);
        let mut rng = seeded(144);
        let (x, y) = pair_with_inner_product(&mut rng, d, 0.7);
        let est = CpfEstimator::new(4000, 145).estimate_pair(&fam, &x, &y);
        let want = fam.cpf(0.7);
        assert!(
            (est.estimate - want).abs() < 0.03,
            "sketched {} vs exact {want}",
            est.estimate
        );
    }

    #[test]
    fn sketch_dim_accounting() {
        let p = Polynomial::new(vec![-1.0 / 3.0, 0.0, 2.0 / 3.0]);
        let fam = SketchedPolynomialSphereDsh::new(8, &p, 128);
        // constant (1) + one active monomial (t^2) * 128.
        assert_eq!(fam.sketch_dim(), 129);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sketch_rejected() {
        let mut rng = seeded(146);
        let _ = CountSketch::sample(&mut rng, 10, 48);
    }
}
