//! The unimodal filter family of Theorem 6.2 and the annulus-search
//! exponent arithmetic of Theorem 6.4.
//!
//! Concatenating one `D+` (threshold `t_+`) with one `D-` (threshold
//! `t_- = gamma t_+`) gives a family whose CPF, as a function of the inner
//! product `alpha`, satisfies (ignoring lower-order terms)
//!
//! ```text
//! ln(1/f(alpha)) ~ a(alpha) t^2/2 + (gamma^2 / a(alpha)) t^2/2,
//! a(alpha) = (1 - alpha)/(1 + alpha),
//! ```
//!
//! which is minimized (CPF maximized) at `a(alpha) = gamma`. Choosing
//! `gamma = a(alpha_max)` therefore centers the CPF's peak at any desired
//! inner product `alpha_max in (-1, 1)` — a unimodal, annulus-shaped CPF.
//! For every `s > 1` the inner products with
//! `(1/s) a_max <= a(alpha) <= s a_max` form the annulus `[alpha_-,
//! alpha_+]` of Theorem 6.2 / Figure 3.

use crate::filter::{FilterDshMinus, FilterDshPlus};
use dsh_core::cpf::AnalyticCpf;
use dsh_core::distance::{alpha_from_ratio, alpha_ratio};
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::hash::combine;
use rand::Rng;

/// Unimodal DSH family on `S^{d-1}` peaking at a chosen inner product
/// `alpha_max` (Theorem 6.2).
#[derive(Debug, Clone, Copy)]
pub struct UnimodalFilterDsh {
    plus: FilterDshPlus,
    minus: FilterDshMinus,
    alpha_max: f64,
    t: f64,
}

impl UnimodalFilterDsh {
    /// Build with peak at `alpha_max` and scale parameter `t > 0`
    /// (`t_+ = t`, `t_- = a(alpha_max) * t`).
    pub fn new(d: usize, alpha_max: f64, t: f64) -> Self {
        assert!(
            alpha_max > -1.0 && alpha_max < 1.0,
            "alpha_max must be in (-1, 1)"
        );
        assert!(t > 0.0);
        let gamma = alpha_ratio(alpha_max);
        let t_plus = t;
        let t_minus = gamma * t;
        UnimodalFilterDsh {
            plus: FilterDshPlus::new(d, t_plus),
            minus: FilterDshMinus::new(d, t_minus),
            alpha_max,
            t,
        }
    }

    /// The targeted peak inner product.
    pub fn alpha_max(&self) -> f64 {
        self.alpha_max
    }

    /// The scale parameter `t` (= `t_+`).
    pub fn t(&self) -> f64 {
        self.t
    }

    /// The `D+` component.
    pub fn plus(&self) -> &FilterDshPlus {
        &self.plus
    }

    /// The `D-` component.
    pub fn minus(&self) -> &FilterDshMinus {
        &self.minus
    }

    /// Leading-order prediction
    /// `ln(1/f(alpha)) ~ (a(alpha) + gamma^2/a(alpha)) t^2/2`.
    pub fn theoretical_ln_inv_cpf(&self, alpha: f64) -> f64 {
        let a = alpha_ratio(alpha);
        let gamma = alpha_ratio(self.alpha_max);
        (a + gamma * gamma / a) * self.t * self.t / 2.0
    }
}

impl DshFamily<[f64]> for UnimodalFilterDsh {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[f64]> {
        let p = self.plus.sample(rng);
        let m = self.minus.sample(rng);
        let (pd, pq, md, mq) = (p.data, p.query, m.data, m.query);
        HasherPair::from_fns(
            move |x: &[f64]| combine(pd.hash(x), md.hash(x)),
            move |y: &[f64]| combine(pq.hash(y), mq.hash(y)),
        )
    }

    fn name(&self) -> String {
        format!("Unimodal(alpha_max={:.2}, t={:.2})", self.alpha_max, self.t)
    }
}

impl AnalyticCpf for UnimodalFilterDsh {
    /// `arg` is the inner product `alpha in (-1, 1)`; exact product CPF
    /// `f_+(alpha) f_-(alpha)`.
    fn cpf(&self, alpha: f64) -> f64 {
        self.plus.cpf(alpha) * self.minus.cpf(alpha)
    }
}

/// The annulus `[alpha_-, alpha_+]` of Theorem 6.2 for peak `alpha_max`
/// and width parameter `s > 1`: all `alpha` with
/// `(1/s) a(alpha_max) <= a(alpha) <= s a(alpha_max)`. Figure 3 plots these
/// boundaries.
pub fn annulus_interval(alpha_max: f64, s: f64) -> (f64, f64) {
    assert!(alpha_max > -1.0 && alpha_max < 1.0);
    assert!(s > 1.0, "annulus width parameter must satisfy s > 1");
    let a_max = alpha_ratio(alpha_max);
    // a(alpha) is decreasing in alpha: the larger ratio bounds alpha from
    // below.
    let alpha_minus = alpha_from_ratio(s * a_max);
    let alpha_plus = alpha_from_ratio(a_max / s);
    (alpha_minus, alpha_plus)
}

/// The `c`-value of Theorem 6.4 for an interval `[alpha_-, alpha_+]`:
/// `c = sqrt(a(alpha_-) / a(alpha_+)) > 1`.
pub fn interval_c_value(alpha_minus: f64, alpha_plus: f64) -> f64 {
    assert!(alpha_minus <= alpha_plus);
    (alpha_ratio(alpha_minus) / alpha_ratio(alpha_plus)).sqrt()
}

/// The query exponent of Theorem 6.4 for solving the
/// `((alpha_-, alpha_+), (beta_-, beta_+))`-annulus problem:
/// `rho = (c_alpha + 1/c_alpha) / (c_beta + 1/c_beta)`.
///
/// Requires the compatibility condition
/// `a(alpha_-) a(alpha_+) = a(beta_-) a(beta_+)` (both intervals centered
/// on the same peak), asserted up to 1e-9.
pub fn annulus_rho(alpha_minus: f64, alpha_plus: f64, beta_minus: f64, beta_plus: f64) -> f64 {
    let prod_a = alpha_ratio(alpha_minus) * alpha_ratio(alpha_plus);
    let prod_b = alpha_ratio(beta_minus) * alpha_ratio(beta_plus);
    assert!(
        (prod_a - prod_b).abs() <= 1e-9 * prod_a.max(prod_b),
        "intervals not centered on the same peak: {prod_a} vs {prod_b}"
    );
    let c_alpha = interval_c_value(alpha_minus, alpha_plus);
    let c_beta = interval_c_value(beta_minus, beta_plus);
    assert!(
        c_beta >= c_alpha,
        "the beta interval must contain the alpha interval"
    );
    (c_alpha + 1.0 / c_alpha) / (c_beta + 1.0 / c_beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::pair_with_inner_product;
    use dsh_core::cpf::peak_of;
    use dsh_core::estimate::CpfEstimator;
    use dsh_math::rng::seeded;

    #[test]
    fn peak_is_at_alpha_max() {
        // alpha_max < 0 inflates t_- = a(alpha_max) t, so keep t moderate
        // for the most negative peak.
        for &alpha_max in &[-0.2, 0.0, 0.4] {
            let fam = UnimodalFilterDsh::new(8, alpha_max, 2.0);
            let (peak, _) = peak_of(&fam, -0.95, 0.95);
            assert!(
                (peak - alpha_max).abs() < 0.1,
                "alpha_max {alpha_max}: peak at {peak}"
            );
        }
    }

    #[test]
    fn cpf_is_unimodal() {
        let fam = UnimodalFilterDsh::new(8, 0.2, 2.0);
        // Increasing left of peak, decreasing right of it.
        let grid: Vec<f64> = (0..=38).map(|i| -0.95 + 0.05 * i as f64).collect();
        let vals: Vec<f64> = grid.iter().map(|&a| fam.cpf(a)).collect();
        let peak_idx = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        for w in vals[..=peak_idx].windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "not increasing before peak");
        }
        for w in vals[peak_idx..].windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "not decreasing after peak");
        }
    }

    #[test]
    fn analytic_cpf_matches_monte_carlo() {
        let d = 10;
        let fam = UnimodalFilterDsh::new(d, 0.0, 1.2);
        let mut rng = seeded(121);
        let alphas = [-0.5, 0.0, 0.5];
        let pairs: Vec<_> = alphas
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a))
            .collect();
        let ests = CpfEstimator::new(4000, 122).estimate_curve(&fam, &pairs);
        for (est, &alpha) in ests.iter().zip(&alphas) {
            let want = fam.cpf(alpha);
            assert!(
                est.contains(want),
                "alpha {alpha}: want {want:.5}, got {} [{}, {}]",
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn theoretical_exponent_tracks_exact() {
        let fam = UnimodalFilterDsh::new(8, 0.3, 3.0);
        for &alpha in &[-0.2, 0.3, 0.6] {
            let exact = -fam.cpf(alpha).ln();
            let lead = fam.theoretical_ln_inv_cpf(alpha);
            assert!(
                (exact - lead).abs() <= 8.0 * 3.0f64.ln() + 8.0,
                "alpha {alpha}: exact {exact:.2} vs lead {lead:.2}"
            );
        }
    }

    #[test]
    fn annulus_interval_brackets_peak_symmetrically_in_ratio() {
        let (lo, hi) = annulus_interval(0.25, 2.0);
        assert!(lo < 0.25 && 0.25 < hi);
        let a_max = alpha_ratio(0.25);
        assert!((alpha_ratio(lo) - 2.0 * a_max).abs() < 1e-12);
        assert!((alpha_ratio(hi) - a_max / 2.0).abs() < 1e-12);
        // Wider s gives a wider annulus.
        let (lo3, hi3) = annulus_interval(0.25, 3.0);
        assert!(lo3 < lo && hi3 > hi);
    }

    #[test]
    fn annulus_cpf_contrast() {
        // Inside the annulus the CPF must be larger than outside
        // (Theorem 6.2's two bullets).
        let fam = UnimodalFilterDsh::new(8, 0.0, 2.5);
        let s = 2.0;
        let (lo, hi) = annulus_interval(0.0, s);
        let inside = fam.cpf(0.0);
        let at_lo = fam.cpf(lo);
        let at_hi = fam.cpf(hi);
        // Far outside:
        let out_lo = fam.cpf(lo - 0.25);
        let out_hi = fam.cpf(hi + 0.25);
        assert!(inside >= at_lo && inside >= at_hi);
        assert!(at_lo > out_lo * 2.0, "{at_lo} vs {out_lo}");
        assert!(at_hi > out_hi * 2.0, "{at_hi} vs {out_hi}");
    }

    #[test]
    fn rho_formula_theorem_6_4() {
        // Symmetric case centered at alpha_max = 0: a_max = 1,
        // alpha interval with ratio s, beta with ratio s' > s.
        let (am, ap) = annulus_interval(0.0, 2.0);
        let (bm, bp) = annulus_interval(0.0, 4.0);
        let c_a = interval_c_value(am, ap);
        let c_b = interval_c_value(bm, bp);
        assert!((c_a - 2.0f64.sqrt() * 2.0f64.sqrt() / 2.0f64.sqrt()).abs() < 1.0); // sanity
        let rho = annulus_rho(am, ap, bm, bp);
        assert!((rho - (c_a + 1.0 / c_a) / (c_b + 1.0 / c_b)).abs() < 1e-12);
        assert!(rho < 1.0 && rho > 0.0);
        // Bound from Theorem 6.4: rho <= 2 / (c + 1/c) with c = c_b / c_a.
        let c = c_b / c_a;
        assert!(rho <= 2.0 / (c + 1.0 / c) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "not centered on the same peak")]
    fn rho_requires_compatible_intervals() {
        let _ = annulus_rho(-0.5, 0.5, -0.4, 0.9);
    }

    #[test]
    fn accessors() {
        let fam = UnimodalFilterDsh::new(8, 0.1, 1.5);
        assert_eq!(fam.alpha_max(), 0.1);
        assert_eq!(fam.t(), 1.5);
        assert!((fam.plus().threshold() - 1.5).abs() < 1e-12);
        assert!((fam.minus().threshold() - alpha_ratio(0.1) * 1.5).abs() < 1e-12);
    }
}
