//! The min-wise-hashing transform of filter maps into asymmetric LSH
//! (paper §1.2, citing [21, Theorem 1.4]).
//!
//! A locality-sensitive *map* sends `x` to a pair of sets
//! `(H(x), G(x))` — here the caps containing `x` and the caps containing
//! `-x` — and looks for set intersections. Min-wise hashing converts the
//! map into an ordinary DSH pair: assign every cap a random priority and
//! let `h(x)` = the minimum-priority cap of `H(x)`, `g(y)` = the
//! minimum-priority cap of `G(y)`.
//!
//! Because the priority order is uniformly random, the minimum-priority
//! element of `H(x) ∪ G(y)` is equally likely to be any member, so
//!
//! ```text
//! Pr[h = g] = (1 - (1-p_or)^m) * p_and / p_or
//! ```
//!
//! — *identical* to the first-index filter family's CPF (Appendix A.1).
//! The difference is operational: the first-index evaluation stops at the
//! first hit (expected `O(1/Pr[Z >= t])` caps), while min-wise hashing
//! must scan all `m` caps. The two families are each other's ablation;
//! `benches/` and the tests below confirm the CPFs coincide.

use crate::filter::suggested_filter_count;
use crate::geometry::GaussianMatrix;
use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair, PointHasher};
use dsh_core::hash::mix64;
use dsh_core::points;
use dsh_math::{bivariate, normal};
use rand::Rng;
use std::sync::Arc;

/// Anti-LSH filter family realized through min-wise hashing instead of
/// first-index selection. CPF equals [`crate::filter::FilterDshMinus`].
#[derive(Debug, Clone, Copy)]
pub struct FilterMinHashDsh {
    d: usize,
    t: f64,
    m: usize,
}

struct MinHasher {
    /// All `m` caps, materialized as one flat matrix: unlike the
    /// first-index filter hasher (which stops at the first hit and
    /// therefore generates caps lazily), min-wise hashing always scans
    /// every cap, so the contiguous rows are pure win. Row `i` equals the
    /// seeded Gaussian stream the lazy hasher would generate for cap `i`.
    caps: Arc<GaussianMatrix>,
    seed: u64,
    t: f64,
    negate: bool,
    sentinel: u64,
}

impl PointHasher<[f64]> for MinHasher {
    fn hash(&self, xs: &[f64]) -> u64 {
        let m = self.caps.rows();
        let mut best: Option<(u64, u64)> = None; // (priority, index)
        for i in 0..m {
            let dot = points::dot(self.caps.row(i), xs);
            let hit = if self.negate {
                dot <= -self.t
            } else {
                dot >= self.t
            };
            if hit {
                let priority = mix64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                if best.is_none_or(|(bp, _)| priority < bp) {
                    best = Some((priority, i as u64));
                }
            }
        }
        match best {
            Some((_, i)) => i,
            None => m as u64 + self.sentinel,
        }
    }
}

impl FilterMinHashDsh {
    /// Family over `S^{d-1}` with threshold `t` and the Lemma A.5 filter
    /// count. Note the `O(m d)` evaluation cost — prefer
    /// [`crate::filter::FilterDshMinus`] unless you need the set view.
    pub fn new(d: usize, t: f64) -> Self {
        Self::with_filter_count(d, t, suggested_filter_count(t))
    }

    /// Explicit filter count.
    pub fn with_filter_count(d: usize, t: f64, m: usize) -> Self {
        assert!(d > 0 && t > 0.0 && m > 0);
        FilterMinHashDsh { d, t, m }
    }

    /// Number of caps.
    pub fn filter_count(&self) -> usize {
        self.m
    }

    /// Dimension of the sphere's ambient space.
    pub fn dim(&self) -> usize {
        self.d
    }
}

impl DshFamily<[f64]> for FilterMinHashDsh {
    fn sample(&self, rng_in: &mut dyn Rng) -> HasherPair<[f64]> {
        let seed = rng_in.next_u64();
        let caps = Arc::new(GaussianMatrix::from_seeded_rows(seed, self.m, self.d));
        HasherPair::new(
            MinHasher {
                caps: Arc::clone(&caps),
                seed,
                t: self.t,
                negate: false,
                sentinel: 1,
            },
            MinHasher {
                caps,
                seed,
                t: self.t,
                negate: true,
                sentinel: 2,
            },
        )
    }

    fn name(&self) -> String {
        format!("FilterMinHash(t={:.2}, m={})", self.t, self.m)
    }
}

impl AnalyticCpf for FilterMinHashDsh {
    /// `arg` is the inner product `alpha in (-1, 1)`; same CPF as the
    /// first-index family.
    fn cpf(&self, alpha: f64) -> f64 {
        assert!(alpha > -1.0 && alpha < 1.0);
        let p_and = bivariate::opposite_orthant(self.t, alpha);
        let p_or = 2.0 * normal::tail(self.t) - p_and;
        if p_or <= 0.0 {
            return 0.0;
        }
        let some_hit = 1.0 - (1.0 - p_or).powi(self.m as i32);
        (some_hit * p_and / p_or).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FilterDshMinus;
    use crate::geometry::pair_with_inner_product;
    use dsh_core::estimate::CpfEstimator;
    use dsh_core::points::DenseVector;
    use dsh_math::rng::seeded;

    #[test]
    fn cpf_equals_first_index_family() {
        let mh = FilterMinHashDsh::with_filter_count(8, 1.5, 500);
        let fi = FilterDshMinus::with_filter_count(8, 1.5, 500);
        for &alpha in &[-0.7, -0.2, 0.0, 0.4, 0.8] {
            assert!((mh.cpf(alpha) - fi.cpf(alpha)).abs() < 1e-14);
        }
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        let d = 10;
        let fam = FilterMinHashDsh::with_filter_count(d, 1.0, 60);
        let mut rng = seeded(0x3C1);
        let alphas = [-0.5, 0.0, 0.5];
        let pairs: Vec<_> = alphas
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a))
            .collect();
        let ests = CpfEstimator::new(3000, 0x3C2).estimate_curve(&fam, &pairs);
        for (est, &alpha) in ests.iter().zip(&alphas) {
            let want = fam.cpf(alpha);
            assert!(
                est.contains(want),
                "alpha {alpha}: want {want:.4}, got {} [{}, {}]",
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn minhash_and_first_index_agree_empirically() {
        // Same parameters, independent sampling: the two families'
        // estimates must agree within joint confidence intervals.
        let d = 8;
        let mh = FilterMinHashDsh::with_filter_count(d, 1.2, 100);
        let fi = FilterDshMinus::with_filter_count(d, 1.2, 100);
        let mut rng = seeded(0x3C3);
        let (x, y) = pair_with_inner_product(&mut rng, d, -0.3);
        let e1 = CpfEstimator::new(4000, 0x3C4).estimate_pair(&mh, &x, &y);
        let e2 = CpfEstimator::new(4000, 0x3C5).estimate_pair(&fi, &x, &y);
        assert!(
            e1.lo <= e2.hi && e2.lo <= e1.hi,
            "CIs disjoint: [{},{}] vs [{},{}]",
            e1.lo,
            e1.hi,
            e2.lo,
            e2.hi
        );
    }

    #[test]
    fn deterministic_given_sample() {
        let fam = FilterMinHashDsh::with_filter_count(6, 1.0, 40);
        let mut rng = seeded(0x3C6);
        let pair = fam.sample(&mut rng);
        let x = DenseVector::random_unit(&mut rng, 6);
        assert_eq!(pair.data.hash(x.as_slice()), pair.data.hash(x.as_slice()));
    }
}
