//! SimHash (Charikar's hyperplane rounding LSH).
//!
//! Symmetric family on `S^{d-1}` with CPF `sim(alpha) = 1 - arccos(alpha)/pi`
//! — the canonical "LSHable angular similarity function" that Theorem 5.1
//! composes with Valiant's polynomial embeddings.

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::{self, DenseVector};
use rand::Rng;

/// SimHash on `S^{d-1}`: sample `a ~ N(0, I_d)` and hash to the sign of
/// `<a, x>`.
#[derive(Debug, Clone, Copy)]
pub struct SimHash {
    d: usize,
}

impl SimHash {
    /// Family over unit vectors in `R^d`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        SimHash { d }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The angular similarity function `sim(alpha) = 1 - arccos(alpha)/pi`.
    pub fn sim(alpha: f64) -> f64 {
        1.0 - alpha.clamp(-1.0, 1.0).acos() / std::f64::consts::PI
    }
}

impl DshFamily<[f64]> for SimHash {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[f64]> {
        let a = DenseVector::gaussian(rng, self.d);
        let b = a.clone();
        HasherPair::from_fns(
            move |x: &[f64]| (points::dot(a.as_slice(), x) >= 0.0) as u64,
            move |y: &[f64]| (points::dot(b.as_slice(), y) >= 0.0) as u64,
        )
    }

    fn name(&self) -> String {
        format!("SimHash(d={})", self.d)
    }
}

impl AnalyticCpf for SimHash {
    /// `arg` is the inner product `alpha in [-1, 1]`.
    fn cpf(&self, alpha: f64) -> f64 {
        SimHash::sim(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::pair_with_inner_product;
    use dsh_core::estimate::CpfEstimator;
    use dsh_math::rng::seeded;

    #[test]
    fn sim_endpoint_values() {
        assert!((SimHash::sim(1.0) - 1.0).abs() < 1e-12);
        assert!((SimHash::sim(-1.0) - 0.0).abs() < 1e-12);
        assert!((SimHash::sim(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cpf_matches_estimate_across_alpha() {
        let d = 16;
        let fam = SimHash::new(d);
        let mut rng = seeded(81);
        let pairs: Vec<(DenseVector, DenseVector)> = [-0.8, -0.3, 0.0, 0.5, 0.9]
            .iter()
            .map(|&a| pair_with_inner_product(&mut rng, d, a))
            .collect();
        let ests = CpfEstimator::new(60_000, 82).estimate_curve(&fam, &pairs);
        for (est, &alpha) in ests.iter().zip(&[-0.8, -0.3, 0.0, 0.5, 0.9]) {
            let want = SimHash::sim(alpha);
            assert!(
                est.contains(want),
                "alpha {alpha}: want {want}, got {} [{}, {}]",
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn symmetric_family_self_collides() {
        let fam = SimHash::new(8);
        let mut rng = seeded(83);
        let x = DenseVector::random_unit(&mut rng, 8);
        for _ in 0..50 {
            assert!(fam.sample(&mut rng).collides(&x, &x));
        }
    }

    #[test]
    fn cpf_is_monotone_increasing_in_alpha() {
        let fam = SimHash::new(4);
        let mut prev = -1.0;
        for i in 0..=20 {
            let alpha = -1.0 + 0.1 * i as f64;
            let v = fam.cpf(alpha);
            assert!(v >= prev);
            prev = v;
        }
    }
}
