//! Unit-sphere distance-sensitive hashing constructions (paper §2, §5, §6.2).
//!
//! Results are stated in terms of the inner product `alpha = <x, y>` between
//! unit vectors (equivalent to cosine similarity; in 1-1 correspondence with
//! angular and Euclidean distance on `S^{d-1}`).
//!
//! * [`simhash::SimHash`] — Charikar's hyperplane LSH, CPF
//!   `1 - arccos(alpha)/pi`; the "LSHable angular similarity function" used
//!   by Theorem 5.1;
//! * [`cross_polytope`] — Andoni et al.'s cross-polytope LSH `CP+` and the
//!   paper's negated-query variant `CP-` (§2.1, Theorem 2.1 /
//!   Corollary 2.2);
//! * [`filter`] — the Gaussian filter families `D+` / `D-` of §2.2 with
//!   threshold parameter `t`, exact CPFs via bivariate orthant
//!   probabilities, and the Theorem 1.2 asymptotics;
//! * [`unimodal`] — the combined unimodal family of Theorem 6.2 and the
//!   annulus exponent arithmetic of Theorem 6.4;
//! * [`valiant`] — Valiant's asymmetric polynomial embeddings realizing
//!   CPF `sim(P(alpha))` (Theorem 5.1);
//! * [`tensor_sketch`] — TensorSketch approximation of those embeddings
//!   (the paper's kernel-approximation remark, after Pham–Pagh).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cross_polytope;
pub mod filter;
pub mod filter_minhash;
pub mod geometry;
pub mod simhash;
pub mod tensor_sketch;
pub mod unimodal;
pub mod valiant;

pub use cross_polytope::{CrossPolytopeAnti, CrossPolytopeLsh};
pub use filter::{FilterDshMinus, FilterDshPlus};
pub use filter_minhash::FilterMinHashDsh;
pub use simhash::SimHash;
pub use unimodal::UnimodalFilterDsh;
pub use valiant::PolynomialSphereDsh;
