//! Unit-sphere geometry helpers: controlled-inner-product pairs,
//! alpha-correlated hypercube corners, Gaussian projections.

use dsh_core::points::{self, DenseVector};
use rand::Rng;

/// Produce a pair of unit vectors with inner product exactly `alpha`
/// (up to float error): `x` uniform on the sphere, `y = alpha x +
/// sqrt(1 - alpha^2) w` with `w` a unit vector orthogonal to `x`.
pub fn pair_with_inner_product(
    rng: &mut dyn Rng,
    d: usize,
    alpha: f64,
) -> (DenseVector, DenseVector) {
    assert!(d >= 2, "need d >= 2 to control the inner product");
    assert!((-1.0..=1.0).contains(&alpha));
    let x = DenseVector::random_unit(rng, d);
    // Random direction, orthogonalized against x (Gram-Schmidt).
    let w = loop {
        let g = DenseVector::gaussian(rng, d);
        let proj = g.dot(&x);
        let orth = g.sub(&x.scaled(proj));
        if orth.norm() > 1e-9 {
            break orth.normalized();
        }
    };
    let y = x.scaled(alpha).add(&w.scaled((1.0 - alpha * alpha).sqrt()));
    (x, y)
}

/// Randomly alpha-correlated hypercube corners (Definition 3.1 pushed onto
/// the sphere): `x` uniform in `{-1/sqrt(d), +1/sqrt(d)}^d`, and each
/// component of `y` equals the corresponding component of `x` with
/// probability `(1 + alpha)/2`, independently. For large `d` the inner
/// product `<x, y>` concentrates around `alpha`.
pub fn correlated_corner_pair(
    rng: &mut dyn Rng,
    d: usize,
    alpha: f64,
) -> (DenseVector, DenseVector) {
    assert!(d >= 1);
    assert!((-1.0..=1.0).contains(&alpha));
    let s = 1.0 / (d as f64).sqrt();
    let keep = (1.0 + alpha) / 2.0;
    let mut xs = Vec::with_capacity(d);
    let mut ys = Vec::with_capacity(d);
    for _ in 0..d {
        let xv = if rng.random_bool(0.5) { s } else { -s };
        let yv = if rng.random_bool(keep) { xv } else { -xv };
        xs.push(xv);
        ys.push(yv);
    }
    (DenseVector::new(xs), DenseVector::new(ys))
}

/// A set of `m` i.i.d. Gaussian projection vectors, stored as one
/// contiguous row-major `m x d` buffer (one allocation instead of one per
/// row), as used by the cross-polytope rotations and the min-wise filter
/// hasher.
#[derive(Debug, Clone)]
pub struct GaussianMatrix {
    data: Vec<f64>,
    m: usize,
    d: usize,
}

impl GaussianMatrix {
    /// Sample an `m x d` matrix with i.i.d. `N(0,1)` entries (entries are
    /// drawn row-major, the same stream order as sampling `m` separate
    /// Gaussian vectors).
    pub fn sample(rng: &mut dyn Rng, m: usize, d: usize) -> Self {
        assert!(d > 0, "row dimension must be positive");
        let mut data = Vec::with_capacity(m * d);
        for _ in 0..m * d {
            data.push(dsh_math::normal::sample(rng));
        }
        GaussianMatrix { data, m, d }
    }

    /// Materialize `m` rows from per-row seeded Gaussian streams: row `i`
    /// holds the first `d` values of the stream seeded with
    /// `derive_seed(seed, i)` — the cap-generation scheme of the filter
    /// hashers, so a matrix built this way reproduces their projections
    /// exactly.
    pub fn from_seeded_rows(seed: u64, m: usize, d: usize) -> Self {
        assert!(d > 0, "row dimension must be positive");
        let mut data = Vec::with_capacity(m * d);
        for i in 0..m {
            let mut stream =
                dsh_math::rng::GaussianStream::new(dsh_math::rng::derive_seed(seed, i as u64));
            for _ in 0..d {
                data.push(stream.next());
            }
        }
        GaussianMatrix { data, m, d }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Row dimension `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Apply to a row: returns the `m` projections `<z_i, x>`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.m];
        self.apply_into(x, &mut out);
        out
    }

    /// Allocation-free [`GaussianMatrix::apply`]: write the `m`
    /// projections into a caller-provided buffer of length `m`, streaming
    /// the flat matrix once.
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.d, "dimension mismatch");
        assert_eq!(
            out.len(),
            self.m,
            "output buffer must have one slot per row"
        );
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.d)) {
            *o = points::dot(row, x);
        }
    }

    /// Row access.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.d..(i + 1) * self.d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn pair_has_requested_inner_product() {
        let mut rng = seeded(71);
        for &alpha in &[-0.99, -0.5, 0.0, 0.3, 0.97, 1.0] {
            let (x, y) = pair_with_inner_product(&mut rng, 24, alpha);
            assert!((x.norm() - 1.0).abs() < 1e-10);
            assert!((y.norm() - 1.0).abs() < 1e-10);
            assert!(
                (x.dot(&y) - alpha).abs() < 1e-10,
                "alpha {alpha}: got {}",
                x.dot(&y)
            );
        }
    }

    #[test]
    fn correlated_corners_concentrate() {
        let mut rng = seeded(72);
        let d = 20_000;
        for &alpha in &[-0.6, 0.0, 0.8] {
            let (x, y) = correlated_corner_pair(&mut rng, d, alpha);
            assert!((x.norm() - 1.0).abs() < 1e-10);
            assert!((x.dot(&y) - alpha).abs() < 0.03, "got {}", x.dot(&y));
        }
    }

    #[test]
    fn correlated_corners_extremes() {
        let mut rng = seeded(73);
        let (x, y) = correlated_corner_pair(&mut rng, 100, 1.0);
        assert_eq!(x, y);
        let (x, y) = correlated_corner_pair(&mut rng, 100, -1.0);
        assert!((x.dot(&y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_matrix_shape_and_projection() {
        let mut rng = seeded(74);
        let m = GaussianMatrix::sample(&mut rng, 5, 8);
        assert_eq!(m.rows(), 5);
        let x = DenseVector::random_unit(&mut rng, 8);
        let p = m.apply(x.as_slice());
        assert_eq!(p.len(), 5);
        assert!((p[2] - points::dot(m.row(2), x.as_slice())).abs() < 1e-15);
    }

    #[test]
    fn apply_into_matches_apply_without_allocating_result() {
        let mut rng = seeded(76);
        let m = GaussianMatrix::sample(&mut rng, 7, 12);
        let x = DenseVector::random_unit(&mut rng, 12);
        let mut out = vec![f64::NAN; 7];
        m.apply_into(x.as_slice(), &mut out);
        assert_eq!(out, m.apply(x.as_slice()));
    }

    #[test]
    fn seeded_rows_reproduce_gaussian_streams() {
        use dsh_math::rng::{derive_seed, GaussianStream};
        let m = GaussianMatrix::from_seeded_rows(0xCAFE, 4, 6);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.dim(), 6);
        for i in 0..4 {
            let mut stream = GaussianStream::new(derive_seed(0xCAFE, i as u64));
            for &v in m.row(i) {
                assert_eq!(v, stream.next(), "row {i} diverged from its stream");
            }
        }
    }

    #[test]
    fn gaussian_projection_of_unit_vector_is_standard_normal() {
        // <z, x> ~ N(0,1) for unit x: check variance empirically.
        let mut rng = seeded(75);
        let x = DenseVector::random_unit(&mut rng, 16);
        let m = GaussianMatrix::sample(&mut rng, 20_000, 16);
        let p = m.apply(x.as_slice());
        let var = p.iter().map(|v| v * v).sum::<f64>() / p.len() as f64;
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}

// Property-style tests over randomized parameter sweeps (seeded, so
// deterministic). These replace `proptest!` blocks: the crate is built
// offline and proptest is not in the dependency set.
#[cfg(test)]
mod proptests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn constructed_pairs_hit_alpha_exactly() {
        let mut params = seeded(0x6E0);
        for _ in 0..64 {
            let seed = params.random_range(0u64..1000);
            let alpha = params.random_range(-0.999f64..0.999);
            let d = params.random_range(2usize..30);
            let mut rng = seeded(seed);
            let (x, y) = pair_with_inner_product(&mut rng, d, alpha);
            assert!((x.norm() - 1.0).abs() < 1e-9, "seed={seed} d={d}");
            assert!((y.norm() - 1.0).abs() < 1e-9, "seed={seed} d={d}");
            assert!(
                (x.dot(&y) - alpha).abs() < 1e-9,
                "seed={seed} d={d} alpha={alpha}"
            );
        }
    }

    #[test]
    fn correlated_corners_are_unit_and_in_range() {
        let mut params = seeded(0x6E1);
        for _ in 0..64 {
            let seed = params.random_range(0u64..1000);
            let alpha = params.random_range(-1.0f64..1.0);
            let mut rng = seeded(seed);
            let (x, y) = correlated_corner_pair(&mut rng, 64, alpha);
            assert!((x.norm() - 1.0).abs() < 1e-9, "seed={seed} alpha={alpha}");
            assert!((y.norm() - 1.0).abs() < 1e-9, "seed={seed} alpha={alpha}");
            let ip = x.dot(&y);
            assert!(
                (-1.0 - 1e-9..=1.0 + 1e-9).contains(&ip),
                "seed={seed} alpha={alpha} ip={ip}"
            );
        }
    }
}
