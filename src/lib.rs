//! # dsh — Distance-Sensitive Hashing
//!
//! Facade crate re-exporting the whole workspace. See the README for a tour.
//!
//! Implements "Distance-Sensitive Hashing" (Aumüller, Christiani, Pagh,
//! Silvestri; PODS 2018): distributions over *pairs* of hash functions
//! `(h, g)` such that `Pr[h(x) = g(y)] = f(dist(x, y))` for a prescribed
//! collision probability function (CPF) `f`.

#![forbid(unsafe_code)]

pub use dsh_core as core;
pub use dsh_data as data;
pub use dsh_euclidean as euclidean;
pub use dsh_hamming as hamming;
pub use dsh_index as index;
pub use dsh_math as math;
pub use dsh_privacy as privacy;
pub use dsh_sphere as sphere;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use dsh_core::combinators::{Concat, Mixture, Power};
    pub use dsh_core::distance::*;
    pub use dsh_core::estimate::{estimate_collision_probability, CpfEstimator};
    pub use dsh_core::family::{BoxedDshFamily, DshFamily, HasherPair, PointHasher};
    pub use dsh_core::points::{
        AppendStore, BitStore, BitVector, ChunkedStore, DenseStore, DenseVector, PointStore,
    };
}
