//! Distribution plumbing behind `Rng::random` and `Rng::random_range`.

use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// Types samplable with their "standard" uniform distribution:
/// `[0, 1)` for floats, the full value range for integers, a fair coin
/// for `bool`.
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl StandardUniform for u128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for i128 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

/// Draw a uniform value in `[0, n)` without modulo bias (rejection
/// sampling on the top of the 64-bit range).
#[inline]
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Largest multiple of n that fits in u64, minus one.
    let zone = u64::MAX - (u64::MAX % n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Range types `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`. Panics on an empty range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty as $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: every draw is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_range_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64,
);

macro_rules! impl_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn signed_range_spans_zero() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..1000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..1000 {
            let v = rng.random_range(2.0f64..3.5);
            assert!((2.0..3.5).contains(&v));
        }
    }

    #[test]
    fn power_of_two_range_masks() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
