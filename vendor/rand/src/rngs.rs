//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Implemented as xoshiro256++ (Blackman & Vigna). The real `rand`'s
/// `StdRng` is ChaCha12; this shim keeps the same *contract* — portable,
/// reproducible streams per seed — with a small, fast, statistically
/// strong generator. Streams are NOT bit-compatible with the real crate.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            let mut state = 0x9E37_79B9_7F4A_7C15;
            for slot in &mut s {
                *slot = crate::splitmix64(&mut state);
            }
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_escapes_zero_state() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        // An all-zero xoshiro state would return 0 forever.
        assert!((0..4).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn from_seed_is_deterministic() {
        let seed = [7u8; 32];
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
