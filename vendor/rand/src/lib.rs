//! Offline shim implementing the subset of the `rand` 0.9 API this
//! workspace uses.
//!
//! The build environment has no network access and an empty registry, so
//! the real `rand` crate cannot be fetched. This crate provides the same
//! *call-site surface* the workspace compiles against:
//!
//! - [`Rng`], an object-safe generator trait (`next_u32` / `next_u64` /
//!   `fill_bytes`) — the workspace passes `&mut dyn Rng` pervasively, so
//!   unlike the real crate's `Rng` this trait must stay dyn-compatible;
//! - the conveniences `random`, `random_range`, `random_bool` as
//!   *inherent* methods on both `dyn Rng` and [`rngs::StdRng`]. Inherent
//!   methods resolve for trait objects and concrete receivers alike with
//!   no extra imports and no `Self: Sized` escape hatches, which is the
//!   only shape that serves every receiver the workspace uses (a generic
//!   method on the trait is either un-callable through `&mut dyn Rng` or
//!   makes the trait not dyn-compatible);
//! - [`SeedableRng`] with `seed_from_u64` / `from_seed` / `from_rng`;
//! - [`rngs::StdRng`], a deterministic, portable generator (xoshiro256++
//!   seeded by SplitMix64 — *not* stream-compatible with the real
//!   `StdRng`, which is ChaCha12, but equally deterministic per seed);
//! - [`distr`] with the `StandardUniform`/`SampleRange` plumbing behind
//!   the conveniences.
//!
//! Consequence for callers: functions that want the conveniences on a
//! borrowed generator take `&mut dyn Rng` (every `&mut StdRng` coerces);
//! functions that only need raw bits may stay generic over `R: Rng +
//! ?Sized`.
//!
//! Statistical quality: xoshiro256++ passes BigCrush; integer ranges use
//! unbiased rejection sampling; `f64` uses the standard 53-bit-mantissa
//! construction in `[0, 1)`. Nothing here is cryptographically secure,
//! which matches how the workspace uses randomness (Monte-Carlo geometry
//! and hash-function sampling).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod distr;
pub mod rngs;

use distr::{SampleRange, StandardUniform};

/// A source of uniformly random bits.
///
/// Deliberately minimal and object-safe: the sampling conveniences
/// (`random`, `random_range`, `random_bool`) are inherent methods on
/// `dyn Rng` and on [`rngs::StdRng`], not trait methods — see the crate
/// docs for why.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Defines the sampling conveniences as inherent methods on a receiver
/// type (`dyn Rng` and `StdRng` get identical surfaces).
macro_rules! sampling_conveniences {
    () => {
        /// Sample a value with the standard uniform distribution for its
        /// type (`[0, 1)` for floats, full range for integers, fair coin
        /// for bool).
        #[inline]
        pub fn random<T: StandardUniform>(&mut self) -> T {
            T::sample_standard(self)
        }

        /// Sample uniformly from a range (`a..b` or `a..=b`).
        ///
        /// Panics if the range is empty. Integer ranges are unbiased
        /// (rejection sampling).
        #[inline]
        pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample_single(self)
        }

        /// Return `true` with probability `p`.
        ///
        /// Panics unless `0.0 <= p <= 1.0`.
        #[inline]
        pub fn random_bool(&mut self, p: f64) -> bool {
            assert!(
                (0.0..=1.0).contains(&p),
                "random_bool: p = {p} not in [0, 1]"
            );
            self.random::<f64>() < p
        }
    };
}

impl<'a> dyn Rng + 'a {
    sampling_conveniences!();
}

impl rngs::StdRng {
    sampling_conveniences!();
}

/// A generator that can be constructed from a seed, deterministically.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for every generator here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed, expanded with SplitMix64 (the
    /// expansion recommended by the xoshiro authors). Same seed, same
    /// stream — forever.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut state);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Construct by drawing a seed from another generator.
    fn from_rng(rng: &mut impl Rng) -> Self {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advance `state` and return the mixed output.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn range_unbiased_coverage() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.random_range(0..7usize)] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; 4-sigma ~ 380
            assert!((c as i64 - 10_000).abs() < 500, "counts {counts:?}");
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.random_range(0..=3u32) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let heads = (0..n).filter(|_| rng.random_bool(0.25)).count();
        assert!((heads as f64 / n as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn dyn_rng_has_full_surface() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
        let i = dyn_rng.random_range(0..10usize);
        assert!(i < 10);
        assert!([true, false].contains(&dyn_rng.random_bool(0.5)));
        let _ = dyn_rng.next_u64();
    }

    #[test]
    fn dyn_and_concrete_streams_agree() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        let a_dyn: &mut dyn Rng = &mut a;
        let xs: Vec<f64> = (0..8).map(|_| a_dyn.random::<f64>()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random::<f64>()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
