//! Offline shim implementing the subset of the `criterion` 0.5 API the
//! workspace's benches use: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and
//! [`Bencher::iter`].
//!
//! Unlike the real crate there is no statistical analysis, HTML report, or
//! CLI filtering — each benchmark runs a short warmup followed by timed
//! batches and prints the mean time per iteration. That keeps `cargo bench`
//! functional (and `cargo check --benches` meaningful) in an environment
//! where the real crate cannot be fetched. Swap the `path` dependency in
//! the root `[workspace.dependencies]` for `criterion = "0.5"` to get the
//! full harness; no bench source changes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Target measurement time per benchmark. Deliberately short: these
/// benches exist to track relative regressions, not publishable numbers.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// The top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id().0, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed time budget makes
    /// an explicit sample count moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no-op in the shim).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, &mut f);
        self
    }

    /// Benchmark a closure that also receives a borrowed input value.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&full, &mut |b| f(b, input));
        self
    }

    /// Close the group (purely cosmetic in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier: either a bare function name or a
/// `function/parameter` pair.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Identifier carrying only a parameter value (the group supplies the
    /// function name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`], so `&str`, `String`, and
/// `BenchmarkId` are all accepted where the real crate accepts them.
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
}

impl Bencher {
    /// Measure `routine`: short warmup, then timed batches until the
    /// measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup, also calibrating a batch size that keeps timer overhead
        // out of the measurement.
        let mut batch: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if warmup_start.elapsed() >= WARMUP_TARGET {
                if dt < Duration::from_micros(50) && batch < u64::MAX / 2 {
                    batch *= 2;
                }
                break;
            }
            if dt < Duration::from_micros(50) && batch < u64::MAX / 2 {
                batch *= 2;
            }
        }

        // Measurement.
        let start = Instant::now();
        while start.elapsed() < MEASURE_TARGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += t.elapsed();
            self.iters += batch;
        }
    }
}

fn run_benchmark(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{name: <50} (no measurement: Bencher::iter never called)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!(
        "{name: <50} {:>12}/iter ({} iters)",
        format_ns(ns),
        bencher.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a runnable group, mirroring the real
/// macro's simple form: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running one or more groups:
/// `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
        });
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }
}
