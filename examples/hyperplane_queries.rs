//! Hyperplane queries (§6.1): find a stored vector approximately
//! orthogonal to the query — used in large-scale active learning to pick
//! the training point closest to the decision boundary.
//!
//! ```sh
//! cargo run --release --example hyperplane_queries
//! ```

use dsh_core::points::DenseVector;
use dsh_data::sphere_data::{plant_at_alpha, uniform_sphere};
use dsh_index::HyperplaneIndex;
use dsh_math::rng::seeded;

fn main() {
    let d = 48;
    let n = 1000;
    let alpha_report = 0.3; // accept |<x, q>| <= 0.3

    let mut rng = seeded(7);
    // Unlabeled pool biased AWAY from the boundary: uniform vectors pushed
    // toward +-q, plus a handful of genuinely boundary-near points.
    let query = DenseVector::random_unit(&mut rng, d);
    let mut pool = Vec::with_capacity(n);
    for i in 0..n - 5 {
        let sign = if i % 2 == 0 { 0.7 } else { -0.7 };
        let base = uniform_sphere(&mut rng, 1, d).pop().unwrap();
        pool.push(query.scaled(sign).add(&base.scaled(0.6)).normalized());
    }
    for _ in 0..5 {
        pool.push(plant_at_alpha(&mut rng, &query, 0.02));
    }

    let index = HyperplaneIndex::build(pool.clone(), d, 1.4, alpha_report, 1.5, &mut rng);
    println!(
        "pool of {n} vectors, reporting bound |alpha| <= {alpha_report}, L = {} repetitions",
        index.repetitions()
    );
    println!(
        "theoretical query exponent rho = {:.3} (§6.1: (1 - a^2)/(1 + a^2))\n",
        dsh_index::hyperplane::theoretical_rho(alpha_report)
    );

    match index.query(&query) {
        (Some(hit), stats) => {
            println!(
                "found boundary vector #{} with <x, q> = {:+.3}",
                hit.index, hit.value
            );
            println!(
                "work: {} retrieved candidates, {} exact dot products (vs {} for a scan)",
                stats.candidates_retrieved, stats.distance_computations, n
            );
        }
        (None, _) => {
            println!("no boundary vector found this run (success prob >= 1/2; rebuild retries)");
        }
    }

    // Exhaustive check of what lives near the hyperplane.
    let near = pool
        .iter()
        .filter(|p| p.dot(&query).abs() <= alpha_report)
        .count();
    println!("\nground truth: {near} pool vectors within the reporting band");
}
