//! The Definition 6.3 annulus-search interface end to end: specify a
//! promise interval of inner products, get back the Theorem 6.4 exponent
//! and a working index.
//!
//! ```sh
//! cargo run --release --example annulus_spec
//! ```

use dsh_data::sphere_data::planted_sphere_instance;
use dsh_index::{AnnulusSpec, SphereAnnulusIndex};
use dsh_math::rng::seeded;

fn main() {
    let d = 64;
    let n = 1500;

    // Promise: some point has inner product in [0.55, 0.65] with the
    // query. We accept anything in the 1.5x-widened (ratio-space) window —
    // narrow enough that background points (alpha ~ N(0, 1/sqrt(d)))
    // essentially never qualify.
    let spec = AnnulusSpec::widened(0.55, 0.65, 1.5);
    println!(
        "promise interval  [alpha-, alpha+] = [{:.3}, {:.3}]",
        spec.alpha.0, spec.alpha.1
    );
    println!(
        "reporting interval [beta-,  beta+] = [{:.3}, {:.3}]",
        spec.beta.0, spec.beta.1
    );
    println!("peak inner product = {:.3}", spec.peak());
    println!("Theorem 6.4 query exponent rho = {:.3}\n", spec.rho());

    let mut found = 0;
    let trials = 5;
    for trial in 0..trials {
        let mut rng = seeded(1000 + trial);
        let inst = planted_sphere_instance(&mut rng, n, d, 0.6);
        let index = SphereAnnulusIndex::build(inst.points, d, spec, 1.4, 1.5, &mut rng);
        let (hit, stats) = index.query(&inst.query);
        match hit {
            Some(m) => {
                found += 1;
                println!(
                    "trial {trial}: found point {} with alpha = {:.3} ({} candidates, {} exact checks, L = {})",
                    m.index,
                    m.value,
                    stats.candidates_retrieved,
                    stats.distance_computations,
                    index.repetitions()
                );
            }
            None => println!("trial {trial}: miss (allowed with probability <= 1/2)"),
        }
    }
    println!(
        "\nfound in {found}/{trials} trials (Theorem 6.1 guarantees success probability >= 1/2)"
    );
}
