//! The paper's motivating example (§1): recommend articles that are on the
//! same topic but "not too aligned" with what the user just read —
//! "close, but not too close".
//!
//! ```sh
//! cargo run --release --example recommender
//! ```
//!
//! We synthesize a clustered corpus of article embeddings on the unit
//! sphere, then build the Theorem 6.2 unimodal annulus index peaked at
//! inner product 0.55: similar enough to be on-topic, but excluding
//! near-duplicates (alpha ~ 1).

use dsh_core::points::DenseVector;
use dsh_core::AnalyticCpf;
use dsh_data::sphere_data::{clustered_sphere, plant_at_alpha};
use dsh_index::annulus::AnnulusIndex;
use dsh_index::linear_scan::LinearScan;
use dsh_math::rng::seeded;
use dsh_sphere::unimodal::{annulus_interval, UnimodalFilterDsh};

fn main() {
    let d = 64;
    let n = 3000;
    let mut rng = seeded(42);

    // A corpus of articles in 12 topic clusters, plus a few planted
    // "same-topic but different perspective" articles for our query.
    let mut corpus = clustered_sphere(&mut rng, n, d, 12, 0.4);
    let query = DenseVector::random_unit(&mut rng, d);
    // Plant: one near-duplicate (alpha = 0.98) and three on-topic-but-
    // different articles (alpha ~ 0.55).
    corpus.push(plant_at_alpha(&mut rng, &query, 0.98));
    for _ in 0..3 {
        corpus.push(plant_at_alpha(&mut rng, &query, 0.55));
    }

    // The annulus: alpha_max = 0.55, reporting window s = 2.
    let alpha_max = 0.55;
    let (lo, hi) = annulus_interval(alpha_max, 2.0);
    println!("recommendation window: inner product in [{lo:.3}, {hi:.3}] (peak {alpha_max})");
    println!("a near-duplicate at alpha = 0.98 must NOT be recommended\n");

    let family = UnimodalFilterDsh::new(d, alpha_max, 1.8);
    let l = (1.5 / family.cpf(alpha_max)).ceil() as usize;
    println!(
        "unimodal filter family: f(peak) = {:.5}, f(0.98) = {:.2e}, f(0) = {:.2e}, L = {l}",
        family.cpf(alpha_max),
        family.cpf(0.98),
        family.cpf(0.0)
    );

    let measure = dsh_index::measures::inner_product();
    let index = AnnulusIndex::build(&family, measure, (lo, hi), corpus.clone(), l, &mut rng);

    match index.query(&query) {
        (Some(hit), stats) => {
            println!(
                "\nrecommended article #{} with alpha = {:.3}",
                hit.index, hit.value
            );
            println!(
                "work: {} candidates retrieved, {} exact similarity checks (corpus size {})",
                stats.candidates_retrieved,
                stats.distance_computations,
                corpus.len()
            );
        }
        (None, stats) => {
            println!(
                "\nno recommendation found this run (success prob >= 1/2; retry with a fresh build); \
                 {} candidates inspected",
                stats.candidates_retrieved
            );
        }
    }

    // Heavy traffic: serve a whole batch of user contexts in one call.
    // `query_batch` fans the queries out across worker threads and reuses
    // one scratch buffer per worker — results are identical to calling
    // `query` in a loop.
    let users: Vec<DenseVector> = std::iter::once(query.clone())
        .chain((0..31).map(|_| DenseVector::random_unit(&mut rng, d)))
        .collect();
    let answers = index.query_batch(&users);
    let served = answers.iter().filter(|(hit, _)| hit.is_some()).count();
    let retrieved: usize = answers
        .iter()
        .map(|(_, stats)| stats.candidates_retrieved)
        .sum();
    println!(
        "\nbatched serving: {} of {} user queries answered in one call \
         ({} candidates retrieved total, avg {:.1}/query)",
        served,
        users.len(),
        retrieved,
        retrieved as f64 / users.len() as f64
    );

    // Baseline: what the naive nearest-neighbor recommender would return.
    let scan = LinearScan::new(
        corpus,
        Box::new(|x: &[f64], y: &[f64]| -dsh_core::points::dot(x, y)),
    );
    if let Some((i, neg_alpha)) = scan.argmin(&query) {
        println!(
            "\nnaive most-similar recommendation: article #{i} with alpha = {:.3} — the near-duplicate.",
            -neg_alpha
        );
        println!("the DSH annulus index skips it by construction.");
    }
}
