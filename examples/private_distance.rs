//! Privacy-preserving distance estimation (§6.4): decide whether two
//! private points are within distance `r` while revealing little else.
//!
//! ```sh
//! cargo run --release --example private_distance
//! ```
//!
//! A hospital holds patient record `x`; a researcher holds query `q`.
//! They want to know only whether `dist(q, x) <= r`. Both hash their
//! points with shared DSH functions and run a (simulated) private set
//! intersection on the digests: "Yes" iff the intersection is nonempty.

use dsh_core::combinators::Power;
use dsh_core::points::BitVector;
use dsh_data::hamming_data::point_at_distance;
use dsh_hamming::BitSampling;
use dsh_math::rng::seeded;
use dsh_privacy::DistanceEstimationProtocol;

fn main() {
    let d = 512;
    let r_rel: f64 = 0.05; // "same patient" threshold
    let c = 4.0;
    let eps = 0.05;

    // Step-ish CPF: (1 - t)^k. f over [0, r] is at least f_min.
    // Sharper step (larger k) = smaller false-positive rate at c*r, at the
    // cost of more shared hash pairs.
    let k = 40usize;
    let family = Power::new(BitSampling::new(d), k);
    let f_min = (1.0 - r_rel).powi(k as i32);
    // Size for eps/2: `required_hashes` is the asymptotic rule; the halved
    // target gives the comfortable margin the paper's "by adjusting
    // constants" remark refers to.
    let n = DistanceEstimationProtocol::<BitVector>::required_hashes(f_min, eps / 2.0);

    let mut rng = seeded(99);
    let protocol = DistanceEstimationProtocol::new(&family, n, 16, &mut rng);
    println!("shared hash pairs N = {n}, digest = 16 bits, eps target = {eps}\n");

    // Scenario 1: records of the same patient (small distance).
    let x = BitVector::random(&mut rng, d);
    let q_close = point_at_distance(&mut rng, &x, (r_rel * d as f64) as usize);
    let out = protocol.run(&x, &q_close);
    println!(
        "same patient   (dist {:.2}d): answer = {}, |intersection| = {}, leakage <= {:.0} bits",
        r_rel,
        if out.answer { "YES" } else { "no" },
        out.intersection_size,
        out.leakage_bits
    );

    // Scenario 2: different patients (distance >= c r).
    let q_far = point_at_distance(&mut rng, &x, (c * r_rel * d as f64) as usize);
    let out = protocol.run(&x, &q_far);
    println!(
        "diff. patients (dist {:.2}d): answer = {}, |intersection| = {}, leakage <= {:.0} bits",
        c * r_rel,
        if out.answer { "YES" } else { "no" },
        out.intersection_size,
        out.leakage_bits
    );

    // Error rates over many runs.
    let runs = 300;
    let mut fneg = 0;
    let mut fpos = 0;
    for _ in 0..runs {
        let x = BitVector::random(&mut rng, d);
        let qc = point_at_distance(&mut rng, &x, (r_rel * d as f64) as usize);
        let qf = point_at_distance(&mut rng, &x, (c * r_rel * d as f64) as usize);
        if !protocol.run(&x, &qc).answer {
            fneg += 1;
        }
        if protocol.run(&x, &qf).answer {
            fpos += 1;
        }
    }
    println!(
        "\nover {runs} runs: false-negative rate {:.3} (target <= {eps}), false-positive rate {:.3}",
        fneg as f64 / runs as f64,
        fpos as f64 / runs as f64
    );
    println!(
        "total communication stays poly(N); only intersection positions + digests are revealed."
    );
}
