//! Quickstart: what a distance-sensitive hash family is and how to use one.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A DSH family (paper Definition 1.1) is a distribution over *pairs* of
//! functions `(h, g)` with `Pr[h(x) = g(y)] = f(dist(x, y))`. This example
//! samples a few families, estimates their CPFs empirically, and shows the
//! shapes symmetric LSH cannot have: increasing, unimodal.

use dsh::prelude::*;
use dsh_core::AnalyticCpf;
use dsh_hamming::{AntiBitSampling, BitSampling};
use dsh_math::rng::seeded;

fn main() {
    let d = 256;
    let mut rng = seeded(7);

    // Two points at relative Hamming distance 0.25.
    let x = BitVector::random(&mut rng, d);
    let mut y = x.clone();
    for i in 0..d / 4 {
        y.flip(i);
    }
    let t = x.relative_hamming(&y);
    println!("relative Hamming distance t = {t}\n");

    // 1. Classical LSH: bit-sampling, decreasing CPF f(t) = 1 - t.
    let lsh = BitSampling::new(d);
    let est = estimate_collision_probability(&lsh, &x, &y, 50_000, 1);
    println!(
        "bit-sampling      (LSH, f = 1 - t): predicted {:.3}, measured {:.3}",
        lsh.cpf(t),
        est.estimate
    );

    // 2. The paper's asymmetric twist: anti bit-sampling, INCREASING CPF
    //    f(t) = t. h(x) = x_i but g(y) = 1 - y_i. Identical points never
    //    collide — impossible for any symmetric family.
    let anti = AntiBitSampling::new(d);
    let est = estimate_collision_probability(&anti, &x, &y, 50_000, 2);
    println!(
        "anti bit-sampling (DSH, f = t)    : predicted {:.3}, measured {:.3}",
        anti.cpf(t),
        est.estimate
    );
    let self_est = estimate_collision_probability(&anti, &x, &x, 10_000, 3);
    println!(
        "anti bit-sampling at distance 0   : measured {:.3} (the 'too close' filter)",
        self_est.estimate
    );

    // 3. Combinators (Lemma 1.4): (1-t)^3 * t^3 is a *unimodal* CPF
    //    peaking at t = 1/2 — the building block for annulus search.
    let unimodal = Concat::new(vec![
        Box::new(Power::new(BitSampling::new(d), 3)) as BoxedDshFamily<[u64]>,
        Box::new(Power::new(AntiBitSampling::new(d), 3)),
    ]);
    println!("\nunimodal CPF (1-t)^3 t^3 across distances:");
    for k in [0, d / 8, d / 4, d / 2, 3 * d / 4, d] {
        let mut z = x.clone();
        for i in 0..k {
            z.flip(i);
        }
        let tt = k as f64 / d as f64;
        let est = estimate_collision_probability(&unimodal, &x, &z, 50_000, 4 + k as u64);
        let predicted = (1.0 - tt).powi(3) * tt.powi(3);
        println!(
            "  t = {tt:.3}: predicted {predicted:.4}, measured {:.4}",
            est.estimate
        );
    }
    println!("\npeak at t = 1/2: the family prefers points 'close, but not too close'.");
}
