//! Designing collision probability functions from polynomials
//! (Theorems 5.1 and 5.2).
//!
//! ```sh
//! cargo run --release --example polynomial_cpfs
//! ```
//!
//! Two routes:
//! * on the unit sphere, any normalized polynomial `P` gives CPF
//!   `sim(P(alpha))` through Valiant's asymmetric embeddings;
//! * in Hamming space, any polynomial with no roots of real part in (0,1)
//!   gives CPF `P(t)/Delta` through root-by-root factorization.

use dsh_core::estimate::CpfEstimator;
use dsh_core::points::BitVector;
use dsh_core::AnalyticCpf;
use dsh_hamming::PolynomialHammingDsh;
use dsh_math::rng::seeded;
use dsh_math::Polynomial;
use dsh_sphere::geometry::pair_with_inner_product;
use dsh_sphere::PolynomialSphereDsh;

fn main() {
    // --- Sphere route (Theorem 5.1): CPF peaked at orthogonality. ---
    let d = 6;
    let p = Polynomial::new(vec![0.0, 0.0, -1.0]); // -t^2, normalized
    let fam = PolynomialSphereDsh::new(d, &p);
    println!("sphere family with P(t) = -t^2  =>  CPF sim(-alpha^2):");
    let mut rng = seeded(11);
    for &alpha in &[-0.9, -0.5, 0.0, 0.5, 0.9] {
        let (x, y) = pair_with_inner_product(&mut rng, d, alpha);
        let est = CpfEstimator::new(20_000, 12).estimate_pair(&fam, &x, &y);
        println!(
            "  alpha = {alpha:+.1}: predicted {:.3}, measured {:.3}",
            fam.cpf(alpha),
            est.estimate
        );
    }
    println!("  (maximal at alpha = 0: this is the hyperplane-query CPF)\n");

    // --- Hamming route (Theorem 5.2): the paper's 1 - t^2 example. ---
    let d = 200;
    let p = Polynomial::new(vec![1.0, 0.0, -1.0]); // 1 - t^2
    let fam = PolynomialHammingDsh::from_polynomial(d, &p).unwrap();
    println!(
        "Hamming family with P(t) = 1 - t^2: Delta = {} (the paper's example of why Delta is needed)",
        fam.delta()
    );
    println!("sub-families: {:?}", fam.piece_names());
    let mut rng = seeded(13);
    let x = BitVector::random(&mut rng, d);
    for &k in &[0usize, 50, 100, 150, 200] {
        let mut y = x.clone();
        for i in 0..k {
            y.flip(i);
        }
        let t = k as f64 / d as f64;
        let est = CpfEstimator::new(20_000, 14 + k as u64).estimate_pair(&fam, &x, &y);
        println!(
            "  t = {t:.2}: target P(t)/Delta = {:.3}, measured {:.3}",
            fam.cpf(t),
            est.estimate
        );
    }

    // Taylor-series remark: approximate cos(t) by its degree-4 truncation.
    let p = Polynomial::new(vec![1.0, 0.0, -0.5, 0.0, 1.0 / 24.0]);
    let fam = PolynomialHammingDsh::from_polynomial(200, &p).unwrap();
    println!(
        "\ncos(t) via Taylor truncation: CPF = P(t)/{:.1}; P(1)/Delta = {:.4} vs cos(1)/Delta = {:.4}",
        fam.delta(),
        fam.cpf(1.0),
        1.0f64.cos() / fam.delta()
    );
}
