//! Approximate spherical range reporting (Theorem 6.5): report *all*
//! points within distance `r`, with output-sensitive cost.
//!
//! ```sh
//! cargo run --release --example range_reporting
//! ```

use dsh_core::combinators::{Concat, Power};
use dsh_core::points::BitVector;
use dsh_core::BoxedDshFamily;
use dsh_data::hamming_data::{point_at_distance, uniform_hamming};
use dsh_hamming::{AntiBitSampling, BitSampling};
use dsh_index::RangeReportingIndex;
use dsh_math::rng::seeded;

fn main() {
    let d = 256;
    let r: f64 = 0.05;
    let r_plus = 0.2;
    let close = 40usize;
    let far = 1000usize;

    let mut rng = seeded(21);
    let q = BitVector::random(&mut rng, d);
    let mut points = Vec::new();
    for _ in 0..close {
        points.push(point_at_distance(&mut rng, &q, (r * d as f64) as usize));
    }
    points.extend(uniform_hamming(&mut rng, far, d));
    let truth: Vec<usize> = (0..close).collect();

    // Step-shaped CPF: (1 - t)^k * t — flat-ish over (0, r], zero at 0,
    // fast decay beyond. Bounded duplication per Theorem 6.5.
    let k = 10;
    let family = Concat::new(vec![
        Box::new(Power::new(BitSampling::new(d), k)) as BoxedDshFamily<[u64]>,
        Box::new(AntiBitSampling::new(d)),
    ]);
    let f_r = (1.0 - r).powi(k as i32) * r;
    let l = (2.5 / f_r).ceil() as usize;

    let measure = dsh_index::measures::relative_hamming(d);
    let index = RangeReportingIndex::build(&family, measure, r, r_plus, points, l, &mut rng);
    println!("dataset: {close} points at distance {r}d + {far} background; L = {l} repetitions");

    let (reported, stats) = index.query(&q);
    let recall = index.recall(&q, &truth);
    println!(
        "\nreported {} points; recall of the true r-ball: {recall:.2}",
        reported.len()
    );
    println!(
        "work: {} retrieved ({} duplicates), {} exact distance checks",
        stats.candidates_retrieved, stats.duplicates, stats.distance_computations
    );
    println!(
        "duplicates per reported point: {:.1} (Theorem 6.5 bounds this by L * f_max/f_min-type factors)",
        stats.duplicates as f64 / reported.len().max(1) as f64
    );

    // Batched reporting: answer several range queries in one call. The
    // batch path fans out across worker threads with per-worker scratch
    // reuse and returns exactly what a query-at-a-time loop would.
    let batch: Vec<BitVector> = std::iter::once(q.clone())
        .chain((0..7).map(|_| BitVector::random(&mut rng, d)))
        .collect();
    let answers = index.query_batch(&batch);
    let total_reported: usize = answers.iter().map(|(out, _)| out.len()).sum();
    let total_work: usize = answers.iter().map(|(_, s)| s.candidates_retrieved).sum();
    println!(
        "\nbatched: {} queries -> {} points reported, {} candidates retrieved total",
        batch.len(),
        total_reported,
        total_work
    );
}
