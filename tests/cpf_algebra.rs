//! Integration test: CPF algebra across crates — Lemma 1.4 combinators
//! composed with constructions from different spaces, including point-space
//! transfer through `MapPoints` (the hypercube-corner embedding of §4.1).

use dsh::prelude::*;
use dsh_core::combinators::{MapPoints, Mixture};
use dsh_core::AnalyticCpf;
use dsh_euclidean::ShiftedEuclideanDsh;
use dsh_hamming::{AntiBitSampling, BitSampling};
use dsh_math::rng::seeded;
use dsh_sphere::SimHash;

#[test]
fn hamming_points_through_sphere_family() {
    // Embed {0,1}^d on the sphere and run SimHash: the CPF must be
    // sim(1 - 2t) where t is the relative Hamming distance.
    let d = 128;
    let fam = MapPoints::new(
        "simhash-on-hypercube",
        SimHash::new(d),
        move |x: &[u64]| BitVector::from_blocks(x.to_vec(), d).to_unit_vector(),
    );
    let mut rng = seeded(0x1E5750);
    let x = BitVector::random(&mut rng, d);
    for k in [0usize, 32, 64, 96, 128] {
        let mut y = x.clone();
        for i in 0..k {
            y.flip(i);
        }
        let t = k as f64 / d as f64;
        let want = SimHash::sim(1.0 - 2.0 * t);
        let est = CpfEstimator::new(30_000, 0x1E5751 + k as u64).estimate_pair(&fam, &x, &y);
        assert!(
            est.contains(want),
            "t={t}: want {want}, got {} [{}, {}]",
            est.estimate,
            est.lo,
            est.hi
        );
    }
}

#[test]
fn concat_across_different_construction_crates() {
    // Concat a Hamming family with a sphere family (via embedding): the
    // CPF is the product (1 - t) * sim(1 - 2t).
    let d = 128;
    let sphere_part = MapPoints::new(
        "simhash-on-hypercube",
        SimHash::new(d),
        move |x: &[u64]| BitVector::from_blocks(x.to_vec(), d).to_unit_vector(),
    );
    let fam = Concat::new(vec![
        Box::new(BitSampling::new(d)) as BoxedDshFamily<[u64]>,
        Box::new(sphere_part),
    ]);
    let mut rng = seeded(0x1E5760);
    let x = BitVector::random(&mut rng, d);
    let mut y = x.clone();
    for i in 0..48 {
        y.flip(i);
    }
    let t = 48.0 / 128.0;
    let want = (1.0 - t) * SimHash::sim(1.0 - 2.0 * t);
    let est = CpfEstimator::new(40_000, 0x1E5761).estimate_pair(&fam, &x, &y);
    assert!(est.contains(want), "want {want}, got {}", est.estimate);
}

#[test]
fn mixture_of_shifted_euclidean_is_average_of_cpfs() {
    let d = 5;
    let c1 = ShiftedEuclideanDsh::new(d, 1, 1.5);
    let c2 = ShiftedEuclideanDsh::new(d, 3, 1.5);
    let fam = Mixture::new(vec![
        (0.25, Box::new(c1) as BoxedDshFamily<[f64]>),
        (0.75, Box::new(c2)),
    ]);
    let mut rng = seeded(0x1E5770);
    let x = DenseVector::gaussian(&mut rng, d);
    let dir = DenseVector::random_unit(&mut rng, d);
    for delta in [1.0, 3.0, 6.0] {
        let y = x.add(&dir.scaled(delta));
        let want = 0.25 * c1.cpf(delta) + 0.75 * c2.cpf(delta);
        let est = CpfEstimator::new(50_000, 0x1E5771).estimate_pair(&fam, &x, &y);
        assert!(
            est.contains(want),
            "delta {delta}: want {want}, got {}",
            est.estimate
        );
    }
}

#[test]
fn anti_bit_sampling_power_matches_polynomial() {
    // (anti)^3 has CPF t^3 — cross-check the combinator against the
    // Theorem 5.2 machinery's monomial semantics.
    let d = 100;
    let fam = Power::new(AntiBitSampling::new(d), 3);
    let mut rng = seeded(0x1E5780);
    let x = BitVector::random(&mut rng, d);
    let mut y = x.clone();
    for i in 0..60 {
        y.flip(i);
    }
    let est = CpfEstimator::new(50_000, 0x1E5781).estimate_pair(&fam, &x, &y);
    assert!(est.contains(0.6f64.powi(3)), "got {}", est.estimate);
}
