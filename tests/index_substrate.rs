//! Integration tests for the CSR + batched index substrate: batched
//! queries must be bit-identical to query-at-a-time loops, builds and
//! batches must be deterministic in the worker-thread count, and the
//! `QueryStats` accounting invariant must hold across the whole surface.

use dsh_core::points::{BitVector, DenseVector};
use dsh_data::{hamming_data, sphere_data};
use dsh_hamming::BitSampling;
use dsh_index::{AnnulusIndex, HashTableIndex, NearNeighborIndex, RangeReportingIndex};
use dsh_index::{AnnulusSpec, SphereAnnulusIndex};
use dsh_math::rng::seeded;

fn hamming_workload(seed: u64, n: usize, nq: usize, d: usize) -> (Vec<BitVector>, Vec<BitVector>) {
    let mut rng = seeded(seed);
    let points = hamming_data::uniform_hamming(&mut rng, n, d);
    // Mix of in-dataset queries (duplicate-heavy) and fresh queries.
    let queries: Vec<BitVector> = points[..nq / 2]
        .iter()
        .cloned()
        .chain((0..nq - nq / 2).map(|_| BitVector::random(&mut rng, d)))
        .collect();
    (points, queries)
}

#[test]
fn substrate_batch_parity_and_thread_determinism() {
    let d = 128;
    let (points, queries) = hamming_workload(0x5B57, 400, 32, d);
    // Two identically seeded builds with different thread counts must be
    // indistinguishable through every query.
    let reference = {
        let mut rng = seeded(0x5B58);
        HashTableIndex::build_with_threads(&BitSampling::new(d), points.clone(), 16, &mut rng, 1)
    };
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| reference.candidates(q, None))
        .collect();
    for threads in [2usize, 4, 32] {
        let mut rng = seeded(0x5B58);
        let idx = HashTableIndex::build_with_threads(
            &BitSampling::new(d),
            points.clone(),
            16,
            &mut rng,
            threads,
        );
        let answers: Vec<_> = queries.iter().map(|q| idx.candidates(q, None)).collect();
        assert_eq!(sequential, answers, "build with {threads} threads diverged");
        // Batched queries equal the sequential loop, per thread count.
        for qthreads in [1usize, 3, 8] {
            assert_eq!(
                sequential,
                idx.candidates_batch_with_threads(&queries, None, qthreads),
                "batch with {qthreads} threads diverged"
            );
        }
    }
}

#[test]
fn substrate_stats_accounting_invariant() {
    let d = 96;
    let (points, queries) = hamming_workload(0x5B59, 300, 48, d);
    let mut rng = seeded(0x5B5A);
    let idx = HashTableIndex::build(&BitSampling::new(d), points, 12, &mut rng);
    for limit in [None, Some(5), Some(64)] {
        for (cands, stats) in idx.candidates_batch(&queries, limit) {
            assert_eq!(stats.distinct_candidates, cands.len());
            assert_eq!(
                stats.distinct_candidates + stats.duplicates,
                stats.candidates_retrieved,
                "accounting broken at limit {limit:?}"
            );
            assert!(stats.tables_probed <= idx.repetitions());
            if let Some(limit) = limit {
                assert!(stats.candidates_retrieved <= limit);
            }
        }
    }
}

#[test]
fn annulus_front_end_batch_parity() {
    let d = 128;
    let (points, queries) = hamming_workload(0x5B5B, 250, 20, d);
    let mut rng = seeded(0x5B5C);
    let measure = dsh_index::measures::relative_hamming(d);
    let idx = AnnulusIndex::build(
        &BitSampling::new(d),
        measure,
        (0.0, 0.3),
        points,
        10,
        &mut rng,
    );
    let sequential: Vec<_> = queries.iter().map(|q| idx.query(q)).collect();
    for threads in [1usize, 2, 6] {
        assert_eq!(sequential, idx.query_batch_with_threads(&queries, threads));
    }
}

#[test]
fn near_neighbor_front_end_batch_parity() {
    let d = 256;
    let mut rng = seeded(0x5B5D);
    let inst = hamming_data::planted_hamming_instance(&mut rng, 300, d, 12);
    let queries: Vec<BitVector> = std::iter::once(inst.query.clone())
        .chain((0..15).map(|_| BitVector::random(&mut rng, d)))
        .collect();
    let measure = dsh_index::measures::relative_hamming(d);
    let idx = NearNeighborIndex::build(
        &BitSampling::new(d),
        measure,
        0.25,
        inst.points,
        0.95,
        0.75,
        2.0,
        &mut rng,
    );
    let sequential: Vec<_> = queries.iter().map(|q| idx.query(q)).collect();
    for threads in [1usize, 4] {
        assert_eq!(sequential, idx.query_batch_with_threads(&queries, threads));
    }
}

#[test]
fn range_reporting_front_end_batch_parity() {
    let d = 128;
    let mut rng = seeded(0x5B5E);
    let q = BitVector::random(&mut rng, d);
    let mut points: Vec<BitVector> = (0..20)
        .map(|_| hamming_data::point_at_distance(&mut rng, &q, 6))
        .collect();
    points.extend(hamming_data::uniform_hamming(&mut rng, 150, d));
    let queries: Vec<BitVector> = std::iter::once(q)
        .chain((0..11).map(|_| BitVector::random(&mut rng, d)))
        .collect();
    let fam = dsh_core::combinators::Power::new(BitSampling::new(d), 8);
    let measure = dsh_index::measures::relative_hamming(d);
    let idx = RangeReportingIndex::build(&fam, measure, 0.05, 0.2, points, 30, &mut rng);
    let sequential: Vec<_> = queries.iter().map(|q| idx.query(q)).collect();
    for threads in [1usize, 3, 5] {
        assert_eq!(sequential, idx.query_batch_with_threads(&queries, threads));
    }
    // Accounting invariant survives the front-end verification pass.
    for (out, stats) in sequential {
        assert!(out.len() <= stats.distinct_candidates);
        assert_eq!(
            stats.distinct_candidates + stats.duplicates,
            stats.candidates_retrieved
        );
        assert_eq!(stats.distance_computations, stats.distinct_candidates);
    }
}

#[test]
fn sphere_front_end_batch_parity() {
    let d = 48;
    let spec = AnnulusSpec::widened(0.55, 0.65, 2.5);
    let mut rng = seeded(0x5B5F);
    let inst = sphere_data::planted_sphere_instance(&mut rng, 200, d, 0.6);
    let queries: Vec<DenseVector> = std::iter::once(inst.query.clone())
        .chain((0..7).map(|_| DenseVector::random_unit(&mut rng, d)))
        .collect();
    let idx = SphereAnnulusIndex::build(inst.points, d, spec, 1.4, 1.5, &mut rng);
    let sequential: Vec<_> = queries.iter().map(|q| idx.query(q)).collect();
    assert_eq!(sequential, idx.query_batch(&queries));
}
