//! Parity sweep for the sharded serving layer: a `ShardedIndex` driven
//! through any insert/remove/seal/compact schedule must answer queries
//! **bit-identically** — ids, order, full `QueryStats` — to an unsharded
//! `DynamicIndex` driven through the same schedule, for shard counts
//! 1/2/8, on both flat store backends, at every interleaving checkpoint;
//! and, after a final compaction, to a static `HashTableIndex` rebuild
//! over the live rows (ids mapped through live-rank order, like
//! `tests/dynamic_parity.rs`).
//!
//! The pinned-totals test at the bottom is the per-logical-segment
//! `QueryStats` accounting regression for the cross-shard merge (the
//! sharded mirror of the dynamic-index pins in `tests/dynamic_parity.rs`).

use dsh_core::family::DshFamily;
use dsh_core::points::{AppendStore, AsRow, BitStore, BitVector, DenseStore, DenseVector};
use dsh_data::{hamming_data, sphere_data};
use dsh_hamming::BitSampling;
use dsh_index::{
    measures, AnnulusIndex, AnnulusSpec, BatchError, DynamicIndex, HashTableIndex, HyperplaneIndex,
    NearNeighborIndex, RangeReportingIndex, ShardedIndex, SphereAnnulusIndex, WriteOutcome,
};
use dsh_math::rng::seeded;
use dsh_sphere::UnimodalFilterDsh;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn bit_points(seed: u64, n: usize, d: usize) -> Vec<BitVector> {
    hamming_data::uniform_hamming(&mut seeded(seed), n, d)
}

fn dense_points(seed: u64, n: usize, d: usize) -> Vec<DenseVector> {
    sphere_data::uniform_sphere(&mut seeded(seed), n, d)
}

/// Map a sharded candidate list (global ids) onto the ids a static
/// rebuild over the live rows assigns (live-rank order).
fn mapped(cands: &[usize], live: &[usize]) -> Vec<usize> {
    cands
        .iter()
        .map(|&i| live.binary_search(&i).expect("candidate id must be live"))
        .collect()
}

/// Drive the same seeded interleaved schedule against both indexes,
/// checking full bit-parity (ids, order, stats) at every step boundary
/// where the schedule performed a structural operation.
fn interleaved_parity_sweep<S, P>(
    family: &(impl DshFamily<S::Row> + ?Sized),
    empty: impl Fn() -> S,
    points: &[P],
    queries: &[P],
    l: usize,
    seed: u64,
) where
    S: AppendStore + Clone,
    P: AsRow<Row = S::Row> + Clone + Send + Sync,
{
    for &shards in &SHARD_COUNTS {
        let mut dynamic = DynamicIndex::build(family, empty(), l, &mut seeded(seed));
        let mut sharded = ShardedIndex::build(family, empty(), l, shards, &mut seeded(seed));
        let mut schedule = seeded(seed ^ 0x5AD);
        let mut removed_any = false;
        let check = |dynamic: &DynamicIndex<S>, sharded: &ShardedIndex<S>, ctx: &str| {
            for (qi, q) in queries.iter().enumerate() {
                for limit in [None, Some(2 * l)] {
                    assert_eq!(
                        dynamic.candidates(q, limit),
                        sharded.candidates(q, limit),
                        "{ctx}, shards {shards}, query {qi}, limit {limit:?}"
                    );
                }
            }
        };
        for (i, p) in points.iter().enumerate() {
            assert_eq!(dynamic.insert(p), sharded.insert(p));
            if schedule.random_bool(0.15) {
                let live: Vec<usize> = dynamic.live_ids().collect();
                let victim = live[dsh_math::rng::index(&mut schedule, live.len())];
                assert_eq!(dynamic.remove(victim), sharded.remove(victim));
                removed_any = true;
                check(&dynamic, &sharded, "post-remove");
            }
            if (i + 1) % 23 == 0 {
                dynamic.seal();
                sharded.seal();
                assert_eq!(dynamic.sealed_segments(), sharded.sealed_segments());
                check(&dynamic, &sharded, "post-seal");
            }
            if (i + 1) % 57 == 0 {
                dynamic.compact();
                sharded.compact();
                assert_eq!(sharded.sealed_segments(), 1);
                check(&dynamic, &sharded, "post-compact");
            }
        }
        assert!(removed_any, "schedule must exercise removals");
        check(&dynamic, &sharded, "end of schedule");
        assert_eq!(dynamic.len(), sharded.len());
        assert_eq!(dynamic.delta_rows(), sharded.delta_rows());
        assert_eq!(dynamic.removed(), sharded.removed());
        assert_eq!(
            dynamic.live_ids().collect::<Vec<_>>(),
            sharded.live_ids().collect::<Vec<_>>()
        );

        // Batched queries agree with the unsharded sequential loop for
        // every thread count.
        let query_store: Vec<P> = queries.to_vec();
        let want: Vec<_> = queries
            .iter()
            .map(|q| dynamic.candidates(q, None))
            .collect();
        for threads in [1usize, 3, 8] {
            assert_eq!(
                want,
                sharded.candidates_batch_with_threads(&query_store, None, threads),
                "batched parity, shards {shards}, threads {threads}"
            );
        }

        // Final compaction: parity against a static rebuild over the live
        // rows (ids mapped through live-rank order), stats included.
        let live: Vec<usize> = sharded.live_ids().collect();
        let mut live_store = empty();
        for &id in &live {
            live_store.push_row(sharded.point(id));
        }
        let static_idx = HashTableIndex::build(family, live_store, l, &mut seeded(seed));
        sharded.compact();
        dynamic.compact();
        check(&dynamic, &sharded, "after final compact");
        for (qi, q) in queries.iter().enumerate() {
            let (want, want_stats) = static_idx.candidates(q, None);
            let (got, got_stats) = sharded.candidates(q, None);
            assert_eq!(
                want,
                mapped(&got, &live),
                "static parity, shards {shards}, query {qi}"
            );
            assert_eq!(
                want_stats, got_stats,
                "static stats parity, shards {shards}, query {qi}"
            );
        }
    }
}

/// One scheduled group-commit item: an insert of `points[.0]` or a
/// remove of global id `.0`.
enum BatchItem {
    Insert(usize),
    Remove(usize),
}

/// Drive a batched writer (`WriteBatch` + `apply_batch`) and a per-op
/// replay of the same operations in lockstep: outcomes, candidates,
/// stats, and live sets must be bit-identical at every batch boundary,
/// while the batched side publishes exactly **one** epoch per effectual
/// batch. Batch sizes cycle 1/7/256 (spanning every shard at the larger
/// sizes), every fourth batch is remove-heavy, and removes may target
/// ids assigned earlier in the same batch.
fn batched_parity_sweep<S, P>(
    family: &(impl DshFamily<S::Row> + ?Sized),
    empty: impl Fn() -> S,
    points: &[P],
    queries: &[P],
    l: usize,
    seed: u64,
) where
    S: AppendStore + Clone,
    P: AsRow<Row = S::Row> + Clone + Send + Sync,
{
    for &shards in &SHARD_COUNTS {
        let mut batched = ShardedIndex::build(family, empty(), l, shards, &mut seeded(seed));
        let mut per_op = ShardedIndex::build(family, empty(), l, shards, &mut seeded(seed));
        let mut dynamic = DynamicIndex::build(family, empty(), l, &mut seeded(seed));
        let mut schedule = seeded(seed ^ 0xBA7C ^ shards as u64);
        let check = |dynamic: &DynamicIndex<S>, batched: &ShardedIndex<S>, ctx: &str| {
            for (qi, q) in queries.iter().enumerate() {
                for limit in [None, Some(2 * l)] {
                    assert_eq!(
                        dynamic.candidates(q, limit),
                        batched.candidates(q, limit),
                        "{ctx}, shards {shards}, query {qi}, limit {limit:?}"
                    );
                }
            }
        };

        let sizes = [1usize, 7, 256];
        let mut sim_live: Vec<usize> = Vec::new();
        let mut dead: Vec<usize> = Vec::new();
        let mut next_point = 0usize;
        let mut batch_no = 0usize;
        while next_point < points.len() {
            let target = sizes[batch_no % sizes.len()];
            let remove_prob = if batch_no % 4 == 3 { 0.6 } else { 0.2 };
            let mut items = Vec::new();
            for _ in 0..target {
                if !sim_live.is_empty()
                    && (next_point >= points.len() || schedule.random_bool(remove_prob))
                {
                    let k = dsh_math::rng::index(&mut schedule, sim_live.len());
                    let id = sim_live.swap_remove(k);
                    dead.push(id);
                    items.push(BatchItem::Remove(id));
                } else if next_point < points.len() {
                    sim_live.push(next_point);
                    items.push(BatchItem::Insert(next_point));
                    next_point += 1;
                } else {
                    break;
                }
            }

            let mut batch = batched.new_batch();
            for item in &items {
                match *item {
                    BatchItem::Insert(pi) => batch.insert(&points[pi]),
                    BatchItem::Remove(id) => batch.remove(id),
                }
            }
            let before = batched.epoch();
            let outcomes = batched
                .apply_batch(&batch)
                .expect("scheduled batches are valid");
            assert_eq!(
                batched.epoch(),
                before + 1,
                "one epoch per effectual batch (shards {shards}, batch {batch_no})"
            );

            let mut want = Vec::with_capacity(items.len());
            for item in &items {
                match *item {
                    BatchItem::Insert(pi) => {
                        let id = dynamic.insert(&points[pi]).unwrap();
                        assert_eq!(id, per_op.insert(&points[pi]).unwrap());
                        want.push(WriteOutcome::Inserted(id));
                    }
                    BatchItem::Remove(id) => {
                        let removed = dynamic.remove(id).unwrap();
                        assert_eq!(removed, per_op.remove(id).unwrap());
                        want.push(WriteOutcome::Removed(removed));
                    }
                }
            }
            assert_eq!(outcomes, want, "shards {shards}, batch {batch_no}");
            check(&dynamic, &batched, "post-batch");

            if batch_no % 3 == 2 {
                dynamic.seal();
                batched.seal();
                per_op.seal();
                assert_eq!(dynamic.sealed_segments(), batched.sealed_segments());
                check(&dynamic, &batched, "post-seal");
            }
            if batch_no % 7 == 6 {
                dynamic.compact();
                batched.compact();
                per_op.compact();
                check(&dynamic, &batched, "post-compact");
            }
            batch_no += 1;
        }

        // The point of group commits: far fewer publications than the
        // per-op writer for the same final state.
        assert!(
            batched.epoch() < per_op.epoch(),
            "shards {shards}: batched epoch {} vs per-op {}",
            batched.epoch(),
            per_op.epoch()
        );
        assert_eq!(
            dynamic.live_ids().collect::<Vec<_>>(),
            batched.live_ids().collect::<Vec<_>>()
        );
        assert_eq!(
            per_op.live_ids().collect::<Vec<_>>(),
            batched.live_ids().collect::<Vec<_>>()
        );
        assert_eq!(dynamic.len(), batched.len());
        assert_eq!(dynamic.delta_rows(), batched.delta_rows());
        assert_eq!(dynamic.removed(), batched.removed());
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(
                per_op.candidates(q, None),
                batched.candidates(q, None),
                "per-op sharded parity, shards {shards}, query {qi}"
            );
        }

        // A batch holding only already-dead removes changes nothing and
        // publishes nothing.
        assert!(dead.len() >= 2, "schedule must produce dead ids");
        let before = batched.epoch();
        let mut noop = batched.new_batch();
        noop.remove(dead[0]);
        noop.remove(dead[1]);
        assert_eq!(
            batched.apply_batch(&noop).unwrap(),
            vec![WriteOutcome::Removed(false); 2]
        );
        assert_eq!(
            batched.epoch(),
            before,
            "all-dead batch must keep the epoch"
        );

        // An out-of-range remove anywhere rejects the whole batch with
        // nothing applied — the index keeps serving its prior state.
        let bound = batched.id_bound() + 1; // one staged insert advances the bound by one
        let mut bad = batched.new_batch();
        bad.insert(&points[0]);
        bad.remove(bound);
        assert_eq!(
            batched.apply_batch(&bad).unwrap_err(),
            BatchError::UnknownId {
                op_index: 1,
                id: bound,
                bound,
            }
        );
        assert_eq!(
            batched.epoch(),
            before,
            "rejected batch must keep the epoch"
        );
        check(&dynamic, &batched, "post-rejection");
    }
}

#[test]
fn bit_store_batched_writes_match_per_op_replay() {
    let d = 128;
    let points = bit_points(0x5DB1, 420, d);
    let queries = bit_points(0x5DB2, 10, d);
    batched_parity_sweep(
        &BitSampling::new(d),
        || BitStore::with_dim(d),
        &points,
        &queries,
        10,
        0x5DB3,
    );
}

#[test]
fn dense_store_batched_writes_match_per_op_replay() {
    let d = 24;
    let points = dense_points(0x5DB5, 300, d);
    let queries = dense_points(0x5DB6, 8, d);
    batched_parity_sweep(
        &UnimodalFilterDsh::new(d, 0.4, 1.3),
        || DenseStore::with_dim(d),
        &points,
        &queries,
        8,
        0x5DB7,
    );
}

#[test]
fn bit_store_sharded_matches_unsharded_at_every_interleaving() {
    let d = 128;
    let points = bit_points(0x5D01, 240, d);
    let queries = bit_points(0x5D02, 12, d);
    interleaved_parity_sweep(
        &BitSampling::new(d),
        || BitStore::with_dim(d),
        &points,
        &queries,
        10,
        0x5D03,
    );
}

#[test]
fn dense_store_sharded_matches_unsharded_at_every_interleaving() {
    let d = 24;
    let points = dense_points(0x5D11, 200, d);
    let queries = dense_points(0x5D12, 10, d);
    interleaved_parity_sweep(
        &UnimodalFilterDsh::new(d, 0.4, 1.3),
        || DenseStore::with_dim(d),
        &points,
        &queries,
        8,
        0x5D13,
    );
}

/// A snapshot taken mid-schedule answers from its frozen state forever:
/// identical to a pristine clone of the unsharded index kept at the same
/// point, no matter how far the writer advances.
#[test]
fn snapshots_keep_answering_from_their_frozen_state() {
    let d = 128;
    let points = bit_points(0x5D21, 180, d);
    let queries = bit_points(0x5D22, 10, d);
    let l = 10;
    for &shards in &SHARD_COUNTS {
        let mut dynamic = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            l,
            &mut seeded(0x5D23),
        );
        let mut sharded = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            l,
            shards,
            &mut seeded(0x5D23),
        );
        let mut frozen = Vec::new(); // (snapshot, pinned unsharded clone)
        for (i, p) in points.iter().enumerate() {
            dynamic.insert(p).unwrap();
            sharded.insert(p).unwrap();
            if i % 11 == 5 {
                dynamic.remove(i).unwrap();
                sharded.remove(i).unwrap();
            }
            if i % 31 == 30 {
                dynamic.seal();
                sharded.seal();
            }
            if i % 59 == 58 {
                dynamic.compact();
                sharded.compact();
            }
            if i % 37 == 36 {
                frozen.push((sharded.reader(), dynamic.clone()));
            }
        }
        assert!(frozen.len() >= 4);
        for (si, (snapshot, pinned)) in frozen.iter().enumerate() {
            for (qi, q) in queries.iter().enumerate() {
                assert_eq!(
                    pinned.candidates(q, None),
                    snapshot.candidates(q, None),
                    "shards {shards}, snapshot {si}, query {qi}"
                );
            }
            assert_eq!(
                pinned.live_ids().collect::<Vec<_>>(),
                snapshot.live_ids().collect::<Vec<_>>(),
                "shards {shards}, snapshot {si} live set"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Front-end parity: every wrapper's build_sharded answers identically to
// its build_dynamic twin over the same schedule — same RNG stream, same
// inserts, same compaction — for shard counts 1/2/8.
// ---------------------------------------------------------------------------

#[test]
fn hamming_front_ends_sharded_equals_dynamic() {
    let d = 128;
    let seed = 0x5DF1;
    let points = bit_points(seed, 160, d);
    let queries: Vec<BitVector> = points[..8]
        .iter()
        .cloned()
        .chain(bit_points(seed + 1, 8, d))
        .collect();

    for &shards in &SHARD_COUNTS {
        // NearNeighborIndex.
        let mut dyn_nn = NearNeighborIndex::build_dynamic(
            &BitSampling::new(d),
            measures::relative_hamming(d),
            0.25,
            BitStore::with_dim(d),
            points.len(),
            0.95,
            0.75,
            2.0,
            &mut seeded(seed + 2),
        );
        let mut sh_nn = NearNeighborIndex::build_sharded(
            &BitSampling::new(d),
            measures::relative_hamming(d),
            0.25,
            BitStore::with_dim(d),
            shards,
            points.len(),
            0.95,
            0.75,
            2.0,
            &mut seeded(seed + 2),
        );
        assert_eq!(dyn_nn.params(), sh_nn.params());
        for (i, p) in points.iter().enumerate() {
            dyn_nn.insert(p).unwrap();
            sh_nn.insert(p).unwrap();
            if i % 41 == 40 {
                dyn_nn.seal();
                sh_nn.seal();
            }
        }
        dyn_nn.remove(7).unwrap();
        sh_nn.remove(7).unwrap();
        // Group-commit passthroughs: batched front-end writes agree too.
        let extra = {
            let mut s = BitStore::with_dim(d);
            for p in bit_points(seed + 9, 6, d) {
                s.push(&p);
            }
            s
        };
        assert_eq!(dyn_nn.insert_batch(&extra), sh_nn.insert_batch(&extra));
        let victims = [points.len(), points.len() + 2, 7];
        assert_eq!(
            dyn_nn.remove_batch(&victims),
            sh_nn.remove_batch(&victims),
            "NearNeighborIndex remove_batch (shards {shards})"
        );
        let want: Vec<_> = queries.iter().map(|q| dyn_nn.query(q)).collect();
        let got: Vec<_> = queries.iter().map(|q| sh_nn.query(q)).collect();
        assert_eq!(want, got, "NearNeighborIndex (shards {shards})");
        for threads in [1usize, 4] {
            assert_eq!(
                want,
                sh_nn.query_batch_with_threads(&queries, threads),
                "NearNeighborIndex batched (shards {shards}, threads {threads})"
            );
        }
        dyn_nn.compact();
        sh_nn.compact();
        assert_eq!(
            queries.iter().map(|q| dyn_nn.query(q)).collect::<Vec<_>>(),
            queries.iter().map(|q| sh_nn.query(q)).collect::<Vec<_>>(),
            "NearNeighborIndex post-compact (shards {shards})"
        );

        // AnnulusIndex.
        let fam = BitSampling::new(d);
        let mut dyn_an = AnnulusIndex::build_dynamic(
            &fam,
            measures::relative_hamming(d),
            (0.0, 0.2),
            BitStore::with_dim(d),
            12,
            &mut seeded(seed + 3),
        );
        let mut sh_an = AnnulusIndex::build_sharded(
            &fam,
            measures::relative_hamming(d),
            (0.0, 0.2),
            BitStore::with_dim(d),
            12,
            shards,
            &mut seeded(seed + 3),
        );
        for p in &points {
            dyn_an.insert(p).unwrap();
            sh_an.insert(p).unwrap();
        }
        dyn_an.seal();
        sh_an.seal();
        let want: Vec<_> = queries.iter().map(|q| dyn_an.query(q)).collect();
        let got: Vec<_> = queries.iter().map(|q| sh_an.query(q)).collect();
        assert_eq!(want, got, "AnnulusIndex (shards {shards})");
        assert_eq!(
            want,
            sh_an.query_batch(&queries),
            "AnnulusIndex batched (shards {shards})"
        );

        // RangeReportingIndex.
        let mut dyn_rr = RangeReportingIndex::build_dynamic(
            &fam,
            measures::relative_hamming(d),
            0.05,
            0.2,
            BitStore::with_dim(d),
            20,
            &mut seeded(seed + 4),
        );
        let mut sh_rr = RangeReportingIndex::build_sharded(
            &fam,
            measures::relative_hamming(d),
            0.05,
            0.2,
            BitStore::with_dim(d),
            20,
            shards,
            &mut seeded(seed + 4),
        );
        for p in &points {
            dyn_rr.insert(p).unwrap();
            sh_rr.insert(p).unwrap();
        }
        dyn_rr.compact();
        sh_rr.compact();
        let want: Vec<_> = queries.iter().map(|q| dyn_rr.query(q)).collect();
        let got: Vec<_> = queries.iter().map(|q| sh_rr.query(q)).collect();
        assert_eq!(want, got, "RangeReportingIndex (shards {shards})");
        assert_eq!(
            want,
            sh_rr.query_batch(&queries),
            "RangeReportingIndex batched (shards {shards})"
        );
    }
}

#[test]
fn sphere_front_ends_sharded_equals_dynamic() {
    let d = 24;
    let seed = 0x5DF9;
    let points = dense_points(seed, 150, d);
    let queries = dense_points(seed + 1, 10, d);

    for &shards in &SHARD_COUNTS {
        // HyperplaneIndex.
        let mut dyn_hp = HyperplaneIndex::build_dynamic(
            DenseStore::with_dim(d),
            d,
            1.4,
            0.4,
            1.5,
            &mut seeded(seed + 2),
        );
        let mut sh_hp = HyperplaneIndex::build_sharded(
            DenseStore::with_dim(d),
            d,
            1.4,
            0.4,
            1.5,
            shards,
            &mut seeded(seed + 2),
        );
        assert_eq!(dyn_hp.repetitions(), sh_hp.repetitions());
        for p in &points {
            dyn_hp.insert(p).unwrap();
            sh_hp.insert(p).unwrap();
        }
        dyn_hp.seal();
        sh_hp.seal();
        dyn_hp.remove(3).unwrap();
        sh_hp.remove(3).unwrap();
        // Group-commit passthroughs: batched front-end writes agree too.
        let extra = {
            let mut s = DenseStore::with_dim(d);
            for p in dense_points(seed + 9, 5, d) {
                s.push_row(p.as_row());
            }
            s
        };
        assert_eq!(dyn_hp.insert_batch(&extra), sh_hp.insert_batch(&extra));
        assert_eq!(
            dyn_hp.remove_batch(&[1, 3]),
            sh_hp.remove_batch(&[1, 3]),
            "HyperplaneIndex remove_batch (shards {shards})"
        );
        let want: Vec<_> = queries.iter().map(|q| dyn_hp.query(q)).collect();
        let got: Vec<_> = queries.iter().map(|q| sh_hp.query(q)).collect();
        assert_eq!(want, got, "HyperplaneIndex (shards {shards})");
        assert_eq!(
            want,
            sh_hp.query_batch(&queries),
            "HyperplaneIndex batched (shards {shards})"
        );

        // SphereAnnulusIndex.
        let spec = AnnulusSpec::widened(0.35, 0.5, 2.5);
        let mut dyn_sa = SphereAnnulusIndex::build_dynamic(
            DenseStore::with_dim(d),
            d,
            spec,
            1.4,
            1.5,
            &mut seeded(seed + 3),
        );
        let mut sh_sa = SphereAnnulusIndex::build_sharded(
            DenseStore::with_dim(d),
            d,
            spec,
            1.4,
            1.5,
            shards,
            &mut seeded(seed + 3),
        );
        for p in &points {
            dyn_sa.insert(p).unwrap();
            sh_sa.insert(p).unwrap();
        }
        dyn_sa.compact();
        sh_sa.compact();
        let want: Vec<_> = queries.iter().map(|q| dyn_sa.query(q)).collect();
        let got: Vec<_> = queries.iter().map(|q| sh_sa.query(q)).collect();
        assert_eq!(want, got, "SphereAnnulusIndex (shards {shards})");
        assert_eq!(
            want,
            sh_sa.query_batch(&queries),
            "SphereAnnulusIndex batched (shards {shards})"
        );
    }
}

// ---------------------------------------------------------------------------
// Pinned QueryStats totals through the cross-shard merge: identical
// points make every counter exactly predictable, and the totals must
// match the unsharded pins in tests/dynamic_parity.rs verbatim.
// ---------------------------------------------------------------------------

#[test]
fn per_logical_segment_query_stats_totals_are_pinned() {
    let d = 32;
    let l = 6;
    let zero = BitVector::zeros(d);
    for &shards in &SHARD_COUNTS {
        // Layout: 10 ids in the initial bulk segment, 7 in a second
        // sealed segment, 5 in the deltas — identical points, so every
        // logical table has exactly one bucket holding everything.
        let mut initial = BitStore::with_dim(d);
        for _ in 0..10 {
            initial.push(&zero);
        }
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            initial,
            l,
            shards,
            &mut seeded(0x57A8),
        );
        for _ in 0..7 {
            idx.insert(&zero).unwrap();
        }
        idx.seal();
        for _ in 0..5 {
            idx.insert(&zero).unwrap();
        }
        assert_eq!(idx.sealed_segments(), 2, "shards {shards}");
        assert_eq!(idx.delta_rows(), 5, "shards {shards}");

        let (cands, stats) = idx.candidates(&zero, None);
        assert_eq!(stats.tables_probed, 3 * l, "2 sealed + 1 delta per table");
        assert_eq!(stats.candidates_retrieved, 22 * l);
        assert_eq!(stats.distinct_candidates, 22);
        assert_eq!(cands.len(), 22);
        assert_eq!(stats.duplicates, 22 * l - 22);
        // Retrieval order: ascending id within each logical bucket.
        assert_eq!(cands[..10], (0..10).collect::<Vec<_>>()[..]);

        // Tombstoned ids — one per region — skipped without counting.
        for id in [0usize, 12, 18] {
            assert_eq!(idx.remove(id), Ok(true));
        }
        let (cands, stats) = idx.candidates(&zero, None);
        assert_eq!(stats.tables_probed, 3 * l);
        assert_eq!(stats.candidates_retrieved, 19 * l);
        assert_eq!(stats.distinct_candidates, 19);
        assert_eq!(cands.len(), 19);
        assert_eq!(stats.duplicates, 19 * l - 19);

        // A retrieval limit truncates exactly, wherever it lands.
        let (_, limited) = idx.candidates(&zero, Some(25));
        assert_eq!(limited.candidates_retrieved, 25);
        assert_eq!(
            limited.distinct_candidates + limited.duplicates,
            limited.candidates_retrieved
        );

        // Post-compaction: one logical segment — static-build accounting.
        idx.compact();
        let (_, stats) = idx.candidates(&zero, None);
        assert_eq!(stats.tables_probed, l);
        assert_eq!(stats.candidates_retrieved, 19 * l);
        assert_eq!(stats.distinct_candidates, 19);
        assert_eq!(stats.duplicates, 19 * l - 19);
    }
}
