//! Integration test: numerical consistency between the analytic machinery
//! in `dsh-math` and the constructions built on it — the cross-crate
//! contracts the experiment suite relies on.

use dsh::prelude::*;
use dsh_core::cpf::peak_of;
use dsh_core::AnalyticCpf;
use dsh_euclidean::{EuclideanLsh, ShiftedEuclideanDsh};
use dsh_math::rng::seeded;
use dsh_sphere::filter::{FilterDshMinus, FilterDshPlus};
use dsh_sphere::unimodal::{annulus_interval, UnimodalFilterDsh};

#[test]
fn filter_cpf_is_consistent_between_plus_minus_and_unimodal() {
    let d = 16;
    let uni = UnimodalFilterDsh::new(d, 0.3, 2.0);
    for alpha in [-0.5, 0.0, 0.3, 0.7] {
        let product = uni.plus().cpf(alpha) * uni.minus().cpf(alpha);
        assert!((uni.cpf(alpha) - product).abs() < 1e-14);
    }
}

#[test]
fn unimodal_peak_location_tracks_parameterization() {
    for alpha_max in [-0.2, 0.1, 0.5] {
        let fam = UnimodalFilterDsh::new(8, alpha_max, 2.2);
        let (peak, _) = peak_of(&fam, -0.9, 0.9);
        assert!((peak - alpha_max).abs() < 0.08, "{alpha_max} vs {peak}");
    }
}

#[test]
fn theorem_6_2_annulus_contrast_is_symmetric_in_exponent() {
    // ln(1/f) at the two annulus endpoints should be approximately equal
    // (the construction balances them by design).
    let fam = UnimodalFilterDsh::new(8, 0.2, 2.5);
    let (lo, hi) = annulus_interval(0.2, 2.0);
    let e_lo = -fam.cpf(lo).ln();
    let e_hi = -fam.cpf(hi).ln();
    assert!(
        (e_lo - e_hi).abs() < 0.35 * e_lo.max(e_hi),
        "endpoint exponents unbalanced: {e_lo} vs {e_hi}"
    );
}

#[test]
fn shifted_family_interpolates_to_e2lsh_shape() {
    // The k >= 1 family's *right* tail at large distance approaches the
    // symmetric family's CPF at the same distance (both are dominated by
    // the tent mass near the origin relative to a wide Gaussian).
    let w = 1.0;
    let shifted = ShiftedEuclideanDsh::new(4, 1, w);
    let symmetric = EuclideanLsh::new(4, w);
    let big = 60.0;
    let ratio = shifted.cpf(big) / symmetric.cpf(big);
    assert!((ratio - 1.0).abs() < 0.05, "tail ratio {ratio}");
}

#[test]
fn plus_and_minus_filters_cross_at_alpha_zero() {
    let plus = FilterDshPlus::new(8, 1.8);
    let minus = FilterDshMinus::new(8, 1.8);
    assert!((plus.cpf(0.0) - minus.cpf(0.0)).abs() < 1e-12);
    assert!(plus.cpf(0.5) > minus.cpf(0.5));
    assert!(plus.cpf(-0.5) < minus.cpf(-0.5));
}

#[test]
fn monte_carlo_agrees_with_analytic_across_the_stack() {
    // One randomized smoke check per space, tight confidence.
    let mut rng = seeded(0x1E5799);

    // Sphere: filter family.
    let fam = FilterDshMinus::new(10, 1.3);
    let (x, y) = dsh_sphere::geometry::pair_with_inner_product(&mut rng, 10, 0.4);
    let est = CpfEstimator::new(6000, 1).estimate_pair(&fam, &x, &y);
    assert!(
        est.contains(fam.cpf(0.4)),
        "filter: {} vs {}",
        est.estimate,
        fam.cpf(0.4)
    );

    // Euclidean: shifted family.
    let fam = ShiftedEuclideanDsh::new(5, 2, 1.0);
    let p = DenseVector::gaussian(&mut rng, 5);
    let q = p.add(&DenseVector::random_unit(&mut rng, 5).scaled(2.0));
    let est = CpfEstimator::new(40_000, 2).estimate_pair(&fam, &p, &q);
    assert!(
        est.contains(fam.cpf(2.0)),
        "shifted: {} vs {}",
        est.estimate,
        fam.cpf(2.0)
    );
}
