//! Integration parity suite for the mutable segmented index: an index
//! grown online (insert / remove / seal / compact in any order) must
//! answer queries exactly like a static index built from the same final
//! live point set — on both flat store backends, for multiple build,
//! compaction, and batch-query thread counts.
//!
//! Identity is checked at two strengths:
//!
//! * **after a final compaction** the dynamic index probes one CSR
//!   segment per table, so candidates *and the full `QueryStats`* must be
//!   bit-identical to the static build (ids mapped through the live-rank
//!   order, which is monotone, hence order-preserving);
//! * **before compaction** (multiple sealed segments + delta +
//!   tombstones) candidate lists are still identical modulo the id
//!   mapping — per table, segment buckets partition the live ids in
//!   ascending order — but `tables_probed` legitimately counts one probe
//!   per physical segment table, so only the other counters are compared.
//!
//! The pinned-totals tests at the bottom are the regression suite for
//! per-segment `QueryStats` accounting (`QueryStats::merge` sums the
//! additive counters; distinctness is computed once per query from the
//! deduplicated output).

use dsh_core::family::DshFamily;
use dsh_core::points::{AppendStore, AsRow, BitStore, BitVector, DenseStore, DenseVector};
use dsh_data::{hamming_data, sphere_data};
use dsh_hamming::BitSampling;
use dsh_index::{
    measures, AnnulusIndex, AnnulusSpec, DynamicIndex, HashTableIndex, HyperplaneIndex,
    NearNeighborIndex, QueryStats, RangeReportingIndex, SphereAnnulusIndex, WriteError,
};
use dsh_math::rng::seeded;
use dsh_sphere::UnimodalFilterDsh;

const BUILD_THREADS: [usize; 3] = [1, 2, 8];
const BATCH_THREADS: [usize; 3] = [1, 3, 8];

fn bit_points(seed: u64, n: usize, d: usize) -> Vec<BitVector> {
    hamming_data::uniform_hamming(&mut seeded(seed), n, d)
}

fn dense_points(seed: u64, n: usize, d: usize) -> Vec<DenseVector> {
    sphere_data::uniform_sphere(&mut seeded(seed), n, d)
}

/// Rank of each dynamic id in the ascending live-id order — the id an
/// equivalent static build over the live rows assigns to the same point.
fn rank_of(live: &[usize], id: usize) -> usize {
    live.binary_search(&id).expect("candidate id must be live")
}

/// Map a dynamic candidate list onto static ids.
fn mapped(cands: &[usize], live: &[usize]) -> Vec<usize> {
    cands.iter().map(|&i| rank_of(live, i)).collect()
}

/// Copy the live rows of a dynamic index into a fresh store, in live-id
/// order (the order the static rebuild indexes them in).
fn live_rows<S: AppendStore>(idx: &DynamicIndex<S>, mut empty: S) -> (S, Vec<usize>) {
    let live: Vec<usize> = idx.live_ids().collect();
    for &id in &live {
        empty.push_row(idx.point(id));
    }
    (empty, live)
}

/// Grow a dynamic index through a seeded interleaved schedule of
/// insert / remove / seal / compact.
fn drive_schedule<S, P>(idx: &mut DynamicIndex<S>, points: &[P], schedule_seed: u64)
where
    S: AppendStore,
    P: AsRow<Row = S::Row>,
{
    let mut rng = seeded(schedule_seed);
    for (i, p) in points.iter().enumerate() {
        idx.insert(p).unwrap();
        if rng.random_bool(0.15) {
            let live: Vec<usize> = idx.live_ids().collect();
            let victim = live[dsh_math::rng::index(&mut rng, live.len())];
            idx.remove(victim).unwrap();
        }
        if (i + 1) % 23 == 0 {
            idx.seal();
        }
        if (i + 1) % 57 == 0 {
            idx.compact();
        }
    }
}

/// Assert every counter except `tables_probed` matches (the pre-compact
/// comparison: physical probe counts differ across segment layouts, the
/// retrieved/dedup accounting must not).
fn assert_stats_match_modulo_probes(a: &QueryStats, b: &QueryStats, ctx: &str) {
    assert_eq!(a.candidates_retrieved, b.candidates_retrieved, "{ctx}");
    assert_eq!(a.distinct_candidates, b.distinct_candidates, "{ctx}");
    assert_eq!(a.duplicates, b.duplicates, "{ctx}");
    assert_eq!(a.distance_computations, b.distance_computations, "{ctx}");
}

/// The core sweep, generic over the store backend and family: insert all
/// points (no removals), compact, and demand bit-identical candidates and
/// stats against the static build — across build threads, batch threads,
/// and retrieval limits.
fn insert_then_compact_sweep<S, P>(
    family: &(impl DshFamily<S::Row> + ?Sized),
    empty: impl Fn() -> S,
    points: &[P],
    queries: &[P],
    l: usize,
    seed: u64,
) where
    S: AppendStore + Clone,
    P: AsRow<Row = S::Row> + Clone + Send + Sync,
{
    for &build_threads in &BUILD_THREADS {
        let mut full = empty();
        for p in points {
            full.push_row(p.as_row());
        }
        let static_idx =
            HashTableIndex::build_with_threads(family, full, l, &mut seeded(seed), build_threads);
        let mut dyn_idx =
            DynamicIndex::build_with_threads(family, empty(), l, &mut seeded(seed), build_threads);
        for p in points {
            dyn_idx.insert(p).unwrap();
        }
        dyn_idx.compact_with_threads(build_threads);
        assert_eq!(dyn_idx.sealed_segments(), 1);

        for limit in [None, Some(2 * l)] {
            let want: Vec<_> = queries
                .iter()
                .map(|q| static_idx.candidates(q, limit))
                .collect();
            let got: Vec<_> = queries
                .iter()
                .map(|q| dyn_idx.candidates(q, limit))
                .collect();
            assert_eq!(
                want, got,
                "post-compact parity (build_threads {build_threads}, limit {limit:?})"
            );
            let query_store: Vec<P> = queries.to_vec();
            for &batch_threads in &BATCH_THREADS {
                let batched =
                    dyn_idx.candidates_batch_with_threads(&query_store, limit, batch_threads);
                assert_eq!(
                    want, batched,
                    "batched parity (batch_threads {batch_threads}, limit {limit:?})"
                );
            }
        }
    }
}

/// The interleaved sweep: a schedule of insert/remove/seal/compact, then
/// a final compact, compared against a static rebuild over the live rows.
fn interleaved_schedule_sweep<S, P>(
    family: &(impl DshFamily<S::Row> + ?Sized),
    empty: impl Fn() -> S,
    points: &[P],
    queries: &[P],
    l: usize,
    seed: u64,
) where
    S: AppendStore + Clone,
    P: AsRow<Row = S::Row> + Clone + Send + Sync,
{
    let mut dyn_idx = DynamicIndex::build(family, empty(), l, &mut seeded(seed));
    drive_schedule(&mut dyn_idx, points, seed ^ 0x5EED);
    assert!(dyn_idx.removed() > 0, "schedule must exercise removals");

    let (live_store, live) = live_rows(&dyn_idx, empty());
    let static_idx = HashTableIndex::build(family, live_store, l, &mut seeded(seed));

    // Before the final compaction: same candidates modulo the id mapping,
    // same retrieval accounting, physical probe counts may differ.
    for (qi, q) in queries.iter().enumerate() {
        let (want, want_stats) = static_idx.candidates(q, None);
        let (got, got_stats) = dyn_idx.candidates(q, None);
        assert_eq!(want, mapped(&got, &live), "pre-compact, query {qi}");
        assert_stats_match_modulo_probes(&want_stats, &got_stats, "pre-compact stats");
    }

    // After it: bit-identical stats too, for every thread count.
    for &threads in &BUILD_THREADS {
        let mut compacted = DynamicIndex::build(family, empty(), l, &mut seeded(seed));
        drive_schedule(&mut compacted, points, seed ^ 0x5EED);
        compacted.compact_with_threads(threads);
        assert_eq!(compacted.sealed_segments(), 1);
        assert_eq!(compacted.delta_rows(), 0);
        for limit in [None, Some(3 * l)] {
            for (qi, q) in queries.iter().enumerate() {
                let (want, want_stats) = static_idx.candidates(q, limit);
                let (got, got_stats) = compacted.candidates(q, limit);
                assert_eq!(
                    want,
                    mapped(&got, &live),
                    "post-compact, threads {threads}, limit {limit:?}, query {qi}"
                );
                assert_eq!(
                    want_stats, got_stats,
                    "post-compact stats, threads {threads}, limit {limit:?}, query {qi}"
                );
            }
        }
    }
}

#[test]
fn bit_store_insert_then_compact_is_bit_identical_to_static_build() {
    let d = 128;
    let points = bit_points(0xB17A, 260, d);
    let queries = bit_points(0xB17B, 18, d);
    insert_then_compact_sweep(
        &BitSampling::new(d),
        || BitStore::with_dim(d),
        &points,
        &queries,
        12,
        0xB17C,
    );
}

#[test]
fn dense_store_insert_then_compact_is_bit_identical_to_static_build() {
    let d = 24;
    let points = dense_points(0xDE5A, 220, d);
    let queries = dense_points(0xDE5B, 16, d);
    insert_then_compact_sweep(
        &UnimodalFilterDsh::new(d, 0.4, 1.3),
        || DenseStore::with_dim(d),
        &points,
        &queries,
        10,
        0xDE5C,
    );
}

#[test]
fn bit_store_interleaved_schedule_matches_static_rebuild() {
    let d = 128;
    let points = bit_points(0x11A0, 240, d);
    let queries = bit_points(0x11A1, 14, d);
    interleaved_schedule_sweep(
        &BitSampling::new(d),
        || BitStore::with_dim(d),
        &points,
        &queries,
        10,
        0x11A2,
    );
}

#[test]
fn dense_store_interleaved_schedule_matches_static_rebuild() {
    let d = 24;
    let points = dense_points(0x11B0, 200, d);
    let queries = dense_points(0x11B1, 12, d);
    interleaved_schedule_sweep(
        &UnimodalFilterDsh::new(d, 0.4, 1.3),
        || DenseStore::with_dim(d),
        &points,
        &queries,
        8,
        0x11B2,
    );
}

// ---------------------------------------------------------------------------
// Front-end parity: every wrapper answers identically through the
// dynamic backend after insert + compact.
// ---------------------------------------------------------------------------

#[test]
fn hamming_front_ends_dynamic_equals_static_after_compact() {
    let d = 128;
    let seed = 0xF0A1;
    let points = bit_points(seed, 200, d);
    let queries: Vec<BitVector> = points[..10]
        .iter()
        .cloned()
        .chain(bit_points(seed + 1, 10, d))
        .collect();

    // NearNeighborIndex.
    let static_nn = NearNeighborIndex::build(
        &BitSampling::new(d),
        measures::relative_hamming(d),
        0.25,
        BitStore::from(points.clone()),
        0.95,
        0.75,
        2.0,
        &mut seeded(seed + 2),
    );
    let mut dyn_nn = NearNeighborIndex::build_dynamic(
        &BitSampling::new(d),
        measures::relative_hamming(d),
        0.25,
        BitStore::with_dim(d),
        points.len(),
        0.95,
        0.75,
        2.0,
        &mut seeded(seed + 2),
    );
    assert_eq!(static_nn.params(), dyn_nn.params());
    for p in &points {
        dyn_nn.insert(p).unwrap();
    }
    dyn_nn.compact();
    let want: Vec<_> = queries.iter().map(|q| static_nn.query(q)).collect();
    let got: Vec<_> = queries.iter().map(|q| dyn_nn.query(q)).collect();
    assert_eq!(want, got, "NearNeighborIndex dynamic/static divergence");
    for threads in [1usize, 4] {
        assert_eq!(
            want,
            dyn_nn.query_batch_with_threads(&queries, threads),
            "NearNeighborIndex batched (threads {threads})"
        );
    }

    // AnnulusIndex.
    let fam = BitSampling::new(d);
    let static_an = AnnulusIndex::build(
        &fam,
        measures::relative_hamming(d),
        (0.0, 0.2),
        BitStore::from(points.clone()),
        12,
        &mut seeded(seed + 3),
    );
    let mut dyn_an = AnnulusIndex::build_dynamic(
        &fam,
        measures::relative_hamming(d),
        (0.0, 0.2),
        BitStore::with_dim(d),
        12,
        &mut seeded(seed + 3),
    );
    for p in &points {
        dyn_an.insert(p).unwrap();
    }
    dyn_an.compact();
    let want: Vec<_> = queries.iter().map(|q| static_an.query(q)).collect();
    let got: Vec<_> = queries.iter().map(|q| dyn_an.query(q)).collect();
    assert_eq!(want, got, "AnnulusIndex dynamic/static divergence");
    assert_eq!(want, dyn_an.query_batch(&queries), "AnnulusIndex batched");

    // RangeReportingIndex.
    let static_rr = RangeReportingIndex::build(
        &fam,
        measures::relative_hamming(d),
        0.05,
        0.2,
        BitStore::from(points.clone()),
        20,
        &mut seeded(seed + 4),
    );
    let mut dyn_rr = RangeReportingIndex::build_dynamic(
        &fam,
        measures::relative_hamming(d),
        0.05,
        0.2,
        BitStore::with_dim(d),
        20,
        &mut seeded(seed + 4),
    );
    for p in &points {
        dyn_rr.insert(p).unwrap();
    }
    dyn_rr.compact();
    let want: Vec<_> = queries.iter().map(|q| static_rr.query(q)).collect();
    let got: Vec<_> = queries.iter().map(|q| dyn_rr.query(q)).collect();
    assert_eq!(want, got, "RangeReportingIndex dynamic/static divergence");
    assert_eq!(
        want,
        dyn_rr.query_batch(&queries),
        "RangeReportingIndex batched"
    );
}

#[test]
fn sphere_front_ends_dynamic_equals_static_after_compact() {
    let d = 24;
    let seed = 0xF0B1;
    let points = dense_points(seed, 180, d);
    let queries = dense_points(seed + 1, 12, d);

    // HyperplaneIndex.
    let static_hp = HyperplaneIndex::build(
        DenseStore::from(points.clone()),
        d,
        1.4,
        0.4,
        1.5,
        &mut seeded(seed + 2),
    );
    let mut dyn_hp = HyperplaneIndex::build_dynamic(
        DenseStore::with_dim(d),
        d,
        1.4,
        0.4,
        1.5,
        &mut seeded(seed + 2),
    );
    for p in &points {
        dyn_hp.insert(p).unwrap();
    }
    dyn_hp.compact();
    assert_eq!(static_hp.repetitions(), dyn_hp.repetitions());
    let want: Vec<_> = queries.iter().map(|q| static_hp.query(q)).collect();
    let got: Vec<_> = queries.iter().map(|q| dyn_hp.query(q)).collect();
    assert_eq!(want, got, "HyperplaneIndex dynamic/static divergence");
    assert_eq!(
        want,
        dyn_hp.query_batch(&queries),
        "HyperplaneIndex batched"
    );

    // SphereAnnulusIndex.
    let spec = AnnulusSpec::widened(0.35, 0.5, 2.5);
    let static_sa = SphereAnnulusIndex::build(
        DenseStore::from(points.clone()),
        d,
        spec,
        1.4,
        1.5,
        &mut seeded(seed + 3),
    );
    let mut dyn_sa = SphereAnnulusIndex::build_dynamic(
        DenseStore::with_dim(d),
        d,
        spec,
        1.4,
        1.5,
        &mut seeded(seed + 3),
    );
    for p in &points {
        dyn_sa.insert(p).unwrap();
    }
    dyn_sa.compact();
    let want: Vec<_> = queries.iter().map(|q| static_sa.query(q)).collect();
    let got: Vec<_> = queries.iter().map(|q| dyn_sa.query(q)).collect();
    assert_eq!(want, got, "SphereAnnulusIndex dynamic/static divergence");
    assert_eq!(
        want,
        dyn_sa.query_batch(&queries),
        "SphereAnnulusIndex batched"
    );
}

// ---------------------------------------------------------------------------
// QueryStats accounting regression: per-segment probes/candidates must
// sum correctly, sequentially and batched. Identical points make every
// count exactly predictable.
// ---------------------------------------------------------------------------

#[test]
fn query_stats_merge_sums_additive_counters_only() {
    let mut a = QueryStats {
        tables_probed: 2,
        candidates_retrieved: 5,
        distinct_candidates: 4,
        duplicates: 1,
        distance_computations: 3,
    };
    let b = QueryStats {
        tables_probed: 1,
        candidates_retrieved: 2,
        distinct_candidates: 2,
        duplicates: 0,
        distance_computations: 7,
    };
    a.merge(&b);
    // distinct_candidates is a whole-query property: merging per-segment
    // partials must not sum it (a point seen from two segments is one
    // candidate) — callers recompute it from the deduplicated output.
    assert_eq!(
        a,
        QueryStats {
            tables_probed: 3,
            candidates_retrieved: 7,
            distinct_candidates: 4,
            duplicates: 1,
            distance_computations: 10,
        }
    );
}

#[test]
fn per_segment_query_stats_totals_are_pinned() {
    let d = 32;
    let l = 6;
    let zero = BitVector::zeros(d);
    // Segment layout: 10 ids in the initial sealed segment, 7 in a second
    // sealed segment, 5 in the delta — all identical points, so every
    // table has exactly one bucket holding everything.
    let mut initial = BitStore::with_dim(d);
    for _ in 0..10 {
        initial.push(&zero);
    }
    let mut idx = DynamicIndex::build(&BitSampling::new(d), initial, l, &mut seeded(0x57A7));
    for _ in 0..7 {
        idx.insert(&zero).unwrap();
    }
    idx.seal();
    for _ in 0..5 {
        idx.insert(&zero).unwrap();
    }
    assert_eq!(idx.sealed_segments(), 2);
    assert_eq!(idx.delta_rows(), 5);

    let (cands, stats) = idx.candidates(&zero, None);
    assert_eq!(stats.tables_probed, 3 * l, "2 sealed + 1 delta per table");
    assert_eq!(stats.candidates_retrieved, 22 * l);
    assert_eq!(stats.distinct_candidates, 22);
    assert_eq!(cands.len(), 22);
    assert_eq!(stats.duplicates, 22 * l - 22);
    assert_eq!(
        stats.distinct_candidates + stats.duplicates,
        stats.candidates_retrieved,
        "dedup accounting must balance across segments"
    );

    // Tombstoned ids — one per region — are skipped without counting.
    for id in [0usize, 12, 18] {
        assert!(idx.remove(id).unwrap());
    }
    let (cands, stats) = idx.candidates(&zero, None);
    assert_eq!(stats.tables_probed, 3 * l);
    assert_eq!(stats.candidates_retrieved, 19 * l);
    assert_eq!(stats.distinct_candidates, 19);
    assert_eq!(cands.len(), 19);
    assert_eq!(stats.duplicates, 19 * l - 19);

    // Batched queries must report the same per-query stats, so the batch
    // totals are exact multiples.
    let queries: Vec<BitVector> = (0..9).map(|_| zero.clone()).collect();
    for threads in [1usize, 4] {
        let batch = idx.candidates_batch_with_threads(&queries, None, threads);
        assert_eq!(batch.len(), 9);
        for (got_cands, got_stats) in &batch {
            assert_eq!(got_cands, &cands, "threads {threads}");
            assert_eq!(got_stats, &stats, "threads {threads}");
        }
        let total: usize = batch.iter().map(|(_, s)| s.candidates_retrieved).sum();
        assert_eq!(total, 9 * 19 * l, "threads {threads}");
        let probes: usize = batch.iter().map(|(_, s)| s.tables_probed).sum();
        assert_eq!(probes, 9 * 3 * l, "threads {threads}");
    }

    // A retrieval limit truncates exactly, wherever it lands.
    let (_, limited) = idx.candidates(&zero, Some(25));
    assert_eq!(limited.candidates_retrieved, 25);
    assert_eq!(
        limited.distinct_candidates + limited.duplicates,
        limited.candidates_retrieved
    );

    // After compaction the layout is one segment per table: the exact
    // accounting of a static build over the 19 live points.
    idx.compact();
    let (_, stats) = idx.candidates(&zero, None);
    assert_eq!(stats.tables_probed, l);
    assert_eq!(stats.candidates_retrieved, 19 * l);
    assert_eq!(stats.distinct_candidates, 19);
    assert_eq!(stats.duplicates, 19 * l - 19);
}

// ---------------------------------------------------------------------------
// Edge-case regressions: the exact behaviors the sharded serving layer
// builds on (a shard routinely sees empty deltas, all-tombstoned deltas,
// and all-tombstoned segments that the sibling shards do not).
// ---------------------------------------------------------------------------

fn small_index(seed: u64, d: usize) -> DynamicIndex<BitStore> {
    DynamicIndex::build(
        &BitSampling::new(d),
        BitStore::with_dim(d),
        5,
        &mut seeded(seed),
    )
}

#[test]
fn remove_of_never_inserted_id_reports_the_id_and_bound() {
    let d = 32;
    let mut idx = small_index(0xE501, d);
    for p in &bit_points(0xE502, 4, d) {
        idx.insert(p).unwrap();
    }
    let err = idx.remove(4).unwrap_err();
    assert_eq!(err, WriteError::UnknownId { id: 4, bound: 4 });
    let msg = err.to_string();
    assert!(msg.contains("id 4") && msg.contains("bound: 4"), "{msg}");
    // The rejected remove left the index untouched and usable.
    assert_eq!(idx.len(), 4);
    assert!(idx.remove(3).unwrap());
}

#[test]
fn remove_of_already_tombstoned_id_reports_false_at_every_layout() {
    let d = 32;
    let mut idx = small_index(0xE503, d);
    for p in &bit_points(0xE504, 10, d) {
        idx.insert(p).unwrap();
    }
    assert!(idx.remove(3).unwrap());
    assert!(!idx.remove(3).unwrap(), "double remove in the delta");
    idx.seal();
    assert!(!idx.remove(3).unwrap(), "double remove after seal");
    idx.compact();
    // The tombstone outlives compaction (the row slot is retired, not
    // recycled), so a third remove still reports false rather than
    // resurrecting the id.
    assert!(!idx.remove(3).unwrap(), "double remove after compact");
    assert_eq!(idx.len(), 9);
    assert_eq!(idx.removed(), 1);
}

#[test]
fn seal_on_empty_delta_is_a_no_op() {
    let d = 32;
    let points = bit_points(0xE505, 12, d);
    let queries = bit_points(0xE506, 4, d);
    let mut idx = small_index(0xE507, d);
    idx.seal(); // nothing inserted yet
    assert_eq!(idx.sealed_segments(), 0);
    for p in &points {
        idx.insert(p).unwrap();
    }
    idx.seal();
    assert_eq!(idx.sealed_segments(), 1);
    let want: Vec<_> = queries.iter().map(|q| idx.candidates(q, None)).collect();
    // Sealing again with an empty delta changes neither the layout nor
    // any answer or stat.
    idx.seal();
    idx.seal();
    assert_eq!(idx.sealed_segments(), 1);
    assert_eq!(idx.delta_rows(), 0);
    let got: Vec<_> = queries.iter().map(|q| idx.candidates(q, None)).collect();
    assert_eq!(want, got);
}

#[test]
fn seal_of_all_tombstoned_delta_clears_it_without_a_segment() {
    let d = 32;
    let mut idx = small_index(0xE508, d);
    let ids: Vec<usize> = bit_points(0xE509, 6, d)
        .iter()
        .map(|p| idx.insert(p).unwrap())
        .collect();
    for &id in &ids {
        idx.remove(id).unwrap();
    }
    assert_eq!(idx.delta_rows(), 6);
    idx.seal();
    // All six rows were dead: no segment may be published, but the delta
    // must still be retired (its HashMap buckets would otherwise keep
    // resurfacing the dead ids to every probe).
    assert_eq!(idx.sealed_segments(), 0);
    assert_eq!(idx.delta_rows(), 0);
    assert!(idx.is_empty());
    assert_eq!(idx.id_bound(), 6);
    // The index keeps working afterwards.
    let p = BitVector::random(&mut seeded(0xE50A), d);
    let id = idx.insert(&p).unwrap();
    assert_eq!(id, 6);
    assert!(idx.candidates(&p, None).0.contains(&id));
}

#[test]
fn compact_of_all_tombstoned_segments_drops_every_segment() {
    let d = 32;
    let points = bit_points(0xE50B, 15, d);
    let mut idx = small_index(0xE50C, d);
    let ids: Vec<usize> = points.iter().map(|p| idx.insert(p).unwrap()).collect();
    idx.seal();
    for &id in &ids[..10] {
        idx.insert(&points[id]).unwrap(); // fresh copies, landing in the delta
    }
    for &id in &ids {
        idx.remove(id).unwrap();
    }
    for id in 15..25 {
        idx.remove(id).unwrap();
    }
    assert!(idx.is_empty());
    idx.compact();
    assert_eq!(idx.sealed_segments(), 0);
    assert_eq!(idx.delta_rows(), 0);
    assert_eq!(idx.id_bound(), 25, "dead ids keep their slots");
    let q = &points[0];
    let (cands, stats) = idx.candidates(q, None);
    assert!(cands.is_empty());
    assert_eq!(stats, QueryStats::default());
    // Growing again after a to-zero compaction assigns fresh ids and
    // matches a static build over just the new rows (modulo the id
    // offset of the retired slots).
    let fresh = bit_points(0xE50D, 8, d);
    for p in &fresh {
        idx.insert(p).unwrap();
    }
    for (i, p) in fresh.iter().enumerate() {
        assert!(
            idx.candidates(p, None).0.contains(&(25 + i)),
            "re-grown point {i} must be retrievable"
        );
    }
}
