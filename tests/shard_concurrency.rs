//! Concurrency soak for the sharded serving layer: one writer thread
//! streams insert/remove/seal/compact against a `ShardedIndex` while
//! reader threads keep taking snapshots — and every snapshot must answer
//! from its frozen state, **exactly**.
//!
//! Exactness is checked two ways per snapshot:
//!
//! * **bit-parity**: the snapshot's epoch says how many writes it has
//!   seen; replaying exactly that schedule prefix into an unsharded
//!   `DynamicIndex` (same seed, hence same hash functions) must reproduce
//!   the snapshot's candidates and `QueryStats` bit-for-bit;
//! * **`LinearScan` ground truth**: a `LinearScan` replayed to the same
//!   prefix pins the exact live set — every snapshot candidate must be
//!   live in the scan, the snapshot's stored rows must equal the inserted
//!   points, and (for a symmetric family) the scan's measure-zero answer
//!   to a live probe point must appear among the snapshot's candidates.
//!
//! The first snapshot each reader takes is held until the writer is done
//! and re-verified at the end: no amount of concurrent writing may change
//! what it answers.
//!
//! Runs across shard counts 1/2/8 and both flat store backends, for two
//! writer styles: per-op writes (one epoch per operation) and group
//! commits (`WriteBatch` + `apply_batch`, one epoch per batch — readers
//! replay each batch per-op, pinning the batched/per-op bit-parity under
//! concurrency). The `DSH_SOAK_ITERS` env knob scales the schedule
//! length (CI's release job sets it; the default keeps debug-mode tier-1
//! fast).

use dsh_core::family::DshFamily;
use dsh_core::points::{AppendStore, AsRow, BitStore, BitVector, DenseStore, DenseVector};
use dsh_data::{hamming_data, sphere_data};
use dsh_hamming::BitSampling;
use dsh_index::annulus::Measure;
use dsh_index::{measures, DynamicIndex, LinearScan, ShardedIndex, Snapshot};
use dsh_math::rng::seeded;
use dsh_sphere::UnimodalFilterDsh;
use std::sync::atomic::{AtomicBool, Ordering};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const READERS: usize = 3;

/// Schedule-length multiplier: 1 in the debug tier-1 run, raised via
/// `DSH_SOAK_ITERS` in the release CI job.
fn soak_iters() -> usize {
    std::env::var("DSH_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// One write operation of the soak schedule.
enum Op<P> {
    Insert(P),
    Remove(usize),
    Seal,
    Compact,
}

/// Precompute a deterministic interleaved schedule (remove victims are
/// chosen against the simulated live set, so replay never double-removes).
fn schedule<P: Clone>(points: &[P], seed: u64) -> Vec<Op<P>> {
    let mut rng = seeded(seed);
    let mut live: Vec<usize> = Vec::new();
    let mut ops = Vec::new();
    for (next_id, p) in points.iter().enumerate() {
        ops.push(Op::Insert(p.clone()));
        live.push(next_id);
        if rng.random_bool(0.12) {
            let k = dsh_math::rng::index(&mut rng, live.len());
            ops.push(Op::Remove(live.swap_remove(k)));
        }
        if (next_id + 1) % 19 == 0 {
            ops.push(Op::Seal);
        }
        if (next_id + 1) % 53 == 0 {
            ops.push(Op::Compact);
        }
    }
    ops
}

/// One item of a scheduled group commit.
enum BatchItem<P> {
    Insert(P),
    Remove(usize),
}

/// One write *event* of the batched soak schedule — each publishes
/// exactly one epoch (the schedule guarantees every event is effectual:
/// batches lead with an insert, seals and compacts fire only with a
/// non-empty delta).
enum BatchedOp<P> {
    Batch(Vec<BatchItem<P>>),
    Seal,
    Compact,
}

/// Precompute a deterministic group-commit schedule: batch sizes cycle
/// 1/7/256 (spanning every shard at the larger sizes), every fourth
/// batch is remove-heavy, and in-batch removes may target ids assigned
/// by the same batch's earlier inserts.
fn batched_schedule<P: Clone>(points: &[P], seed: u64) -> Vec<BatchedOp<P>> {
    let mut rng = seeded(seed);
    let mut live: Vec<usize> = Vec::new();
    let mut delta = 0usize; // unsealed rows in the simulated index
    let mut ops = Vec::new();
    let sizes = [1usize, 7, 256];
    let mut next = 0usize;
    let mut batch_no = 0usize;
    while next < points.len() {
        let target = sizes[batch_no % sizes.len()];
        let remove_prob = if batch_no % 4 == 3 { 0.5 } else { 0.15 };
        // Lead with an insert so every batch moves the delta.
        let mut items = vec![BatchItem::Insert(points[next].clone())];
        live.push(next);
        next += 1;
        delta += 1;
        for _ in 1..target {
            if !live.is_empty() && rng.random_bool(remove_prob) {
                let k = dsh_math::rng::index(&mut rng, live.len());
                items.push(BatchItem::Remove(live.swap_remove(k)));
            } else if next < points.len() {
                items.push(BatchItem::Insert(points[next].clone()));
                live.push(next);
                next += 1;
                delta += 1;
            } else {
                break;
            }
        }
        ops.push(BatchedOp::Batch(items));
        if (batch_no + 1).is_multiple_of(7) && delta > 0 {
            ops.push(BatchedOp::Compact);
            delta = 0;
        } else if (batch_no + 1).is_multiple_of(3) && delta > 0 {
            ops.push(BatchedOp::Seal);
            delta = 0;
        }
        batch_no += 1;
    }
    ops
}

/// A reader's private ground truth, replayed event-by-event to each
/// snapshot's epoch: the unsharded index (bit-parity), the linear scan
/// (exact live set), and the row log.
struct Replica<S: AppendStore, P> {
    index: DynamicIndex<S>,
    scan: LinearScan<S>,
    rows: Vec<P>,
}

impl<S: AppendStore + Clone, P: AsRow<Row = S::Row> + Clone> Replica<S, P> {
    fn advance<O: SoakOp<S, P>>(&mut self, ops: &[O]) {
        for op in ops {
            op.replay(self);
        }
    }

    fn apply_item(&mut self, item: &BatchItem<P>) {
        match item {
            BatchItem::Insert(p) => {
                self.index.insert(p).unwrap();
                self.scan.insert(p);
                self.rows.push(p.clone());
            }
            BatchItem::Remove(id) => {
                assert!(self.index.remove(*id).unwrap());
                assert!(self.scan.remove(*id).unwrap());
            }
        }
    }
}

/// One write event of a soak schedule: how a reader replays it into its
/// per-op replica, and how the writer applies it to the sharded index.
/// Each applied event must publish exactly one epoch — the readers'
/// prefix replay (`ops[..epoch]`) silently depends on it.
trait SoakOp<S: AppendStore + Clone, P: AsRow<Row = S::Row> + Clone> {
    fn replay(&self, replica: &mut Replica<S, P>);
    fn apply(&self, idx: &mut ShardedIndex<S>);
}

impl<S, P> SoakOp<S, P> for Op<P>
where
    S: AppendStore + Clone,
    P: AsRow<Row = S::Row> + Clone,
{
    fn replay(&self, replica: &mut Replica<S, P>) {
        match self {
            Op::Insert(p) => replica.apply_item(&BatchItem::Insert(p.clone())),
            Op::Remove(id) => replica.apply_item(&BatchItem::Remove(*id)),
            Op::Seal => replica.index.seal(),
            Op::Compact => replica.index.compact(),
        }
    }

    fn apply(&self, idx: &mut ShardedIndex<S>) {
        match self {
            Op::Insert(p) => {
                idx.insert(p).unwrap();
            }
            Op::Remove(id) => {
                assert!(idx.remove(*id).unwrap());
            }
            Op::Seal => idx.seal(),
            Op::Compact => idx.compact(),
        }
    }
}

impl<S, P> SoakOp<S, P> for BatchedOp<P>
where
    S: AppendStore + Clone,
    P: AsRow<Row = S::Row> + Clone,
{
    fn replay(&self, replica: &mut Replica<S, P>) {
        match self {
            BatchedOp::Batch(items) => {
                for item in items {
                    replica.apply_item(item);
                }
            }
            BatchedOp::Seal => replica.index.seal(),
            BatchedOp::Compact => replica.index.compact(),
        }
    }

    fn apply(&self, idx: &mut ShardedIndex<S>) {
        match self {
            BatchedOp::Batch(items) => {
                let mut batch = idx.new_batch();
                for item in items {
                    match item {
                        BatchItem::Insert(p) => batch.insert(p),
                        BatchItem::Remove(id) => batch.remove(*id),
                    }
                }
                let outcomes = idx
                    .apply_batch(&batch)
                    .expect("scheduled batches are valid");
                assert_eq!(outcomes.len(), items.len());
            }
            BatchedOp::Seal => idx.seal(),
            BatchedOp::Compact => idx.compact(),
        }
    }
}

/// All the exactness assertions one snapshot must satisfy against a
/// replica at the same epoch.
fn verify_snapshot<S, P>(
    snapshot: &Snapshot<S>,
    replica: &Replica<S, P>,
    queries: &[P],
    l: usize,
    symmetric: bool,
    ctx: &str,
) where
    S: AppendStore + Clone,
    S::Row: std::fmt::Debug + PartialEq,
    P: AsRow<Row = S::Row> + Clone,
{
    // Bit-parity with the unsharded replay.
    assert_eq!(snapshot.id_bound(), replica.index.id_bound(), "{ctx}");
    assert_eq!(snapshot.len(), replica.index.len(), "{ctx}");
    let live: Vec<usize> = replica.index.live_ids().collect();
    assert_eq!(snapshot.live_ids().collect::<Vec<_>>(), live, "{ctx}");
    for (qi, q) in queries.iter().enumerate() {
        for limit in [None, Some(2 * l)] {
            assert_eq!(
                replica.index.candidates(q, limit),
                snapshot.candidates(q, limit),
                "{ctx}, query {qi}, limit {limit:?}"
            );
        }
    }

    // LinearScan ground truth over the frozen point set.
    for &id in live.iter().take(5) {
        assert!(
            replica.scan.is_live(id),
            "{ctx}: snapshot live id {id} dead in the scan"
        );
        assert_eq!(
            snapshot.point(id),
            replica.rows[id].as_row(),
            "{ctx}: row {id} diverged from the inserted point"
        );
    }
    if let Some(&probe_id) = live.first() {
        let probe = &replica.rows[probe_id];
        let (cands, _) = snapshot.candidates(probe, None);
        for &c in &cands {
            assert!(
                replica.scan.is_live(c),
                "{ctx}: candidate {c} is not live in the scan"
            );
        }
        if symmetric {
            // The scan's measure-zero hit has a row identical to the
            // probe, so a symmetric family must retrieve it in every
            // table — it cannot be missing from the candidates.
            let (hit, _) = replica.scan.find_in_interval(probe, 0.0, 0.0);
            let hit = hit.expect("a live probe point must find itself");
            assert!(
                cands.contains(&hit),
                "{ctx}: scan's exact hit {hit} missing from snapshot candidates"
            );
        }
    }
}

/// The soak driver: writer thread streams the schedule, `READERS` reader
/// threads snapshot-and-verify until it finishes, each re-verifying its
/// first-held snapshot at the end.
#[allow(clippy::too_many_arguments)] // one knob per soak dimension
#[allow(clippy::needless_pass_by_value)] // owned datasets keep call sites one-liners
fn soak<S, P, F, M, O>(
    family: &F,
    empty: impl Fn() -> S + Sync,
    make_measure: M,
    ops: Vec<O>,
    queries: Vec<P>,
    l: usize,
    seed: u64,
    symmetric: bool,
) where
    S: AppendStore + Clone,
    S::Row: std::fmt::Debug + PartialEq,
    P: AsRow<Row = S::Row> + Clone + Send + Sync,
    F: DshFamily<S::Row> + ?Sized + Sync,
    M: Fn() -> Measure<S::Row> + Sync,
    O: SoakOp<S, P> + Sync,
{
    for &shards in &SHARD_COUNTS {
        let mut idx = ShardedIndex::build(family, empty(), l, shards, &mut seeded(seed));
        let handle = idx.reader_handle();
        let done = AtomicBool::new(false);
        // The writer waits here until every reader has taken and verified
        // its first (pre-write) snapshot, so each reader provably verifies
        // at least two snapshots: one at epoch 0 and the final one.
        let start = std::sync::Barrier::new(READERS + 1);
        std::thread::scope(|scope| {
            let (ops, done, queries, start) = (&ops, &done, &queries, &start);
            let empty = &empty;
            let make_measure = &make_measure;
            for reader in 0..READERS {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut replica = Replica {
                        index: DynamicIndex::build(family, empty(), l, &mut seeded(seed)),
                        scan: LinearScan::new(empty(), make_measure()),
                        rows: Vec::new(),
                    };
                    let mut cursor = 0usize;
                    let mut first: Option<(Snapshot<S>, DynamicIndex<S>)> = None;
                    let mut verified = 0usize;
                    loop {
                        let writer_done = done.load(Ordering::Acquire);
                        let snapshot = handle.snapshot();
                        let epoch = snapshot.epoch() as usize;
                        assert!(epoch >= cursor, "snapshot epochs must be monotone");
                        replica.advance(&ops[cursor..epoch]);
                        cursor = epoch;
                        let ctx = format!("shards {shards}, reader {reader}, epoch {epoch}");
                        verify_snapshot(&snapshot, &replica, queries, l, symmetric, &ctx);
                        verified += 1;
                        if first.is_none() {
                            first = Some((snapshot, replica.index.clone()));
                            start.wait(); // release the writer
                        }
                        if writer_done {
                            break;
                        }
                    }
                    assert_eq!(cursor, ops.len(), "final snapshot must be the last epoch");
                    assert!(verified >= 2, "reader {reader} verified too few snapshots");
                    // The snapshot held since the start still answers from
                    // its frozen state after every write has landed.
                    let (first_snapshot, pinned) = first.expect("at least one snapshot");
                    for q in queries {
                        assert_eq!(
                            pinned.candidates(q, None),
                            first_snapshot.candidates(q, None),
                            "shards {shards}, reader {reader}: held snapshot drifted"
                        );
                    }
                });
            }
            scope.spawn(move || {
                start.wait(); // all readers hold their pre-write snapshot
                for op in ops {
                    op.apply(&mut idx);
                    // Give readers a chance to interleave mid-schedule.
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Release);
            });
        });
    }
}

#[test]
fn bit_store_snapshots_stay_exact_under_concurrent_writes() {
    let d = 128;
    let n = 130 * soak_iters();
    let points = hamming_data::uniform_hamming(&mut seeded(0x50AC), n, d);
    let queries: Vec<BitVector> = hamming_data::uniform_hamming(&mut seeded(0x50AD), 6, d);
    soak(
        &BitSampling::new(d),
        || BitStore::with_dim(d),
        || measures::relative_hamming(d),
        schedule(&points, 0x50AE ^ 0x0C0DE),
        queries,
        8,
        0x50AE,
        true,
    );
}

#[test]
fn dense_store_snapshots_stay_exact_under_concurrent_writes() {
    let d = 24;
    let n = 110 * soak_iters();
    let points = sphere_data::uniform_sphere(&mut seeded(0x50B0), n, d);
    let queries: Vec<DenseVector> = sphere_data::uniform_sphere(&mut seeded(0x50B1), 5, d);
    soak(
        &UnimodalFilterDsh::new(d, 0.4, 1.3),
        || DenseStore::with_dim(d),
        measures::inner_product,
        schedule(&points, 0x50B2 ^ 0x0C0DE),
        queries,
        7,
        0x50B2,
        false,
    );
}

#[test]
fn bit_store_snapshots_stay_exact_under_concurrent_group_commits() {
    let d = 128;
    let n = 420 * soak_iters();
    let points = hamming_data::uniform_hamming(&mut seeded(0x50C0), n, d);
    let queries: Vec<BitVector> = hamming_data::uniform_hamming(&mut seeded(0x50C1), 6, d);
    soak(
        &BitSampling::new(d),
        || BitStore::with_dim(d),
        || measures::relative_hamming(d),
        batched_schedule(&points, 0x50C2 ^ 0x0C0DE),
        queries,
        8,
        0x50C2,
        true,
    );
}

#[test]
fn dense_store_snapshots_stay_exact_under_concurrent_group_commits() {
    let d = 24;
    let n = 330 * soak_iters();
    let points = sphere_data::uniform_sphere(&mut seeded(0x50C4), n, d);
    let queries: Vec<DenseVector> = sphere_data::uniform_sphere(&mut seeded(0x50C5), 5, d);
    soak(
        &UnimodalFilterDsh::new(d, 0.4, 1.3),
        || DenseStore::with_dim(d),
        measures::inner_product,
        batched_schedule(&points, 0x50C6 ^ 0x0C0DE),
        queries,
        7,
        0x50C6,
        false,
    );
}
