//! Integration test: Theorem 6.1 annulus search, end to end, in both
//! Hamming space (powered bit-sampling x anti bit-sampling) and on the
//! sphere (Theorem 6.2 unimodal filter family).

use dsh::prelude::*;
use dsh_core::AnalyticCpf;
use dsh_data::{hamming_data, sphere_data};
use dsh_hamming::{AntiBitSampling, BitSampling};
use dsh_index::annulus::AnnulusIndex;
use dsh_sphere::unimodal::{annulus_interval, UnimodalFilterDsh};

#[test]
fn hamming_annulus_succeeds_with_probability_half() {
    let d = 256;
    let (k1, k2) = (9usize, 3usize);
    let fam = Concat::new(vec![
        Box::new(Power::new(BitSampling::new(d), k1)) as BoxedDshFamily<[u64]>,
        Box::new(Power::new(AntiBitSampling::new(d), k2)),
    ]);
    let peak = 0.25f64;
    let f_peak = (1.0 - peak).powi(k1 as i32) * peak.powi(k2 as i32);
    let l = (1.5 / f_peak).ceil() as usize;

    let runs = 24;
    let mut hits = 0;
    for run in 0..runs {
        let mut rng = dsh_math::rng::seeded(0x1E5720 + run);
        let inst = hamming_data::planted_hamming_instance(&mut rng, 300, d, 64);
        let measure = dsh_index::measures::relative_hamming(d);
        let idx = AnnulusIndex::build(&fam, measure, (0.15, 0.35), inst.points, l, &mut rng);
        let (hit, stats) = idx.query(&inst.query);
        assert!(
            stats.candidates_retrieved <= 8 * l,
            "8L termination violated"
        );
        if let Some(m) = hit {
            assert!((0.15..=0.35).contains(&m.value));
            hits += 1;
        }
    }
    assert!(
        hits * 2 >= runs,
        "success {hits}/{runs} below the Thm 6.1 guarantee"
    );
}

#[test]
fn sphere_annulus_succeeds_and_respects_interval() {
    let d = 40;
    let alpha_max = 0.5;
    let fam = UnimodalFilterDsh::new(d, alpha_max, 1.6);
    let l = (1.5 / fam.cpf(alpha_max)).ceil() as usize;
    let (lo, hi) = annulus_interval(alpha_max, 3.0);

    let runs = 16;
    let mut hits = 0;
    for run in 0..runs {
        let mut rng = dsh_math::rng::seeded(0x1E5730 + run);
        let inst = sphere_data::planted_sphere_instance(&mut rng, 250, d, alpha_max);
        let measure = dsh_index::measures::inner_product();
        let idx = AnnulusIndex::build(&fam, measure, (lo, hi), inst.points, l, &mut rng);
        if let (Some(m), _) = idx.query(&inst.query) {
            assert!(
                (lo..=hi).contains(&m.value),
                "reported {} outside window",
                m.value
            );
            hits += 1;
        }
    }
    assert!(hits * 2 >= runs, "success {hits}/{runs} below 1/2");
}

#[test]
fn annulus_never_reports_outside_window() {
    // Whatever the retrieval does, the verification step must filter.
    let d = 128;
    let fam = Power::new(AntiBitSampling::new(d), 2);
    let mut rng = dsh_math::rng::seeded(0x1E5740);
    let points = dsh_data::hamming_data::uniform_hamming(&mut rng, 200, d);
    let q = BitVector::random(&mut rng, d);
    let measure = dsh_index::measures::relative_hamming(d);
    let idx = AnnulusIndex::build(&fam, measure, (0.45, 0.55), points, 15, &mut rng);
    if let (Some(m), _) = idx.query(&q) {
        assert!((0.45..=0.55).contains(&m.value));
    }
}
