//! Integration test: Theorem 1.3 / Lemma 3.5 and Lemma 3.10.
//!
//! For randomly alpha-correlated points, every DSH family must satisfy
//!
//! ```text
//! f^(0)^((1+a)/(1-a)) <= f^(a) <= f^(0)^((1-a)/(1+a))
//! ```
//!
//! We verify it across families from every construction crate — the
//! feasibility side of the paper's tightness story.

use dsh::prelude::*;
use dsh_data::hamming_data::correlated_pair;
use dsh_hamming::{AntiBitSampling, BitSampling, PolynomialHammingDsh, ScaledBitSampling};
use dsh_math::Polynomial;

fn assert_bound<F: DshFamily<[u64]>>(family: &F, d: usize, alphas: &[f64], slack: f64) {
    let est = CpfEstimator::new(40_000, 0x1E571);
    let f0 = est
        .estimate_probabilistic(family, |rng| correlated_pair(rng, d, 0.0))
        .estimate;
    assert!(
        f0 > 0.0 && f0 < 1.0,
        "degenerate f^(0) = {f0} for {}",
        family.name()
    );
    for &alpha in alphas {
        let fa = est
            .estimate_probabilistic(family, |rng| correlated_pair(rng, d, alpha))
            .estimate;
        let lower = f0.powf((1.0 + alpha) / (1.0 - alpha));
        let upper = f0.powf((1.0 - alpha) / (1.0 + alpha));
        assert!(
            fa >= lower * (1.0 - slack),
            "{}: f^({alpha}) = {fa} below Thm 1.3 bound {lower}",
            family.name()
        );
        assert!(
            fa <= upper * (1.0 + slack),
            "{}: f^({alpha}) = {fa} above Lemma 3.10 bound {upper}",
            family.name()
        );
    }
}

#[test]
fn bit_sampling_families_respect_theorem_1_3() {
    let d = 512;
    let alphas = [0.2, 0.5, 0.8];
    assert_bound(&BitSampling::new(d), d, &alphas, 0.15);
    assert_bound(&AntiBitSampling::new(d), d, &alphas, 0.15);
    assert_bound(&ScaledBitSampling::new(d, 0.5), d, &alphas, 0.15);
}

#[test]
fn polynomial_family_respects_theorem_1_3() {
    let d = 256;
    // Unimodal CPF t(1-t).
    let fam =
        PolynomialHammingDsh::from_polynomial(d, &Polynomial::new(vec![0.0, 1.0, -1.0])).unwrap();
    assert_bound(&fam, d, &[0.2, 0.5], 0.15);
}

#[test]
fn powered_families_respect_theorem_1_3() {
    let d = 512;
    let fam = Power::new(BitSampling::new(d), 4);
    assert_bound(&fam, d, &[0.2, 0.5], 0.15);
}

#[test]
fn analytic_cpfs_respect_the_bound_exactly() {
    // The analytic probabilistic CPFs (exact, no Monte-Carlo noise):
    // bit-sampling f^(a) = (1+a)/2, anti f^(a) = (1-a)/2.
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let f0: f64 = 0.5;
        let bound = f0.powf((1.0 + alpha) / (1.0 - alpha));
        let bs = (1.0 + alpha) / 2.0;
        let anti = (1.0 - alpha) / 2.0;
        assert!(bs >= bound);
        assert!(anti >= bound, "alpha {alpha}: {anti} < {bound}");
    }
}
