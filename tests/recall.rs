//! Statistical recall@1 checks for [`NearNeighborIndex`] on
//! planted-neighbor data, run through the shared `tests/common` harness
//! against both the static and the dynamic (insert-then-compact) build
//! paths.
//!
//! Both paths consume identical randomness, so beyond clearing the
//! recall bar the dynamic path must reproduce the static path's answers
//! run for run.

mod common;

use common::{recall_at_1, RecallSweep};
use dsh_core::points::BitStore;
use dsh_hamming::BitSampling;
use dsh_index::{measures, NearNeighborIndex};

const FACTOR: f64 = 2.0;

/// Minimum acceptable recall@1: each run succeeds with constant
/// probability well above 1/2 (factor 2.0 boosts the standard guarantee),
/// so 60% over 20 runs leaves a wide flake margin while still catching a
/// broken index, which lands near zero.
const MIN_RECALL: f64 = 0.6;

#[test]
fn static_near_neighbor_recall_clears_the_bar() {
    let sweep = RecallSweep::standard();
    let recall = recall_at_1(&sweep, |inst, rng| {
        let idx = NearNeighborIndex::build(
            &BitSampling::new(sweep.d),
            measures::relative_hamming(sweep.d),
            sweep.r2_rel,
            BitStore::from(inst.points.clone()),
            sweep.p1(),
            sweep.p2(),
            FACTOR,
            rng,
        );
        idx.query(&inst.query).0
    });
    assert!(recall >= MIN_RECALL, "static recall@1 = {recall}");
}

#[test]
fn dynamic_near_neighbor_recall_matches_static_run_for_run() {
    let sweep = RecallSweep::standard();
    let mut static_answers = Vec::new();
    let static_recall = recall_at_1(&sweep, |inst, rng| {
        let idx = NearNeighborIndex::build(
            &BitSampling::new(sweep.d),
            measures::relative_hamming(sweep.d),
            sweep.r2_rel,
            BitStore::from(inst.points.clone()),
            sweep.p1(),
            sweep.p2(),
            FACTOR,
            rng,
        );
        let hit = idx.query(&inst.query).0;
        static_answers.push(hit);
        hit
    });

    let mut run = 0;
    let dynamic_recall = recall_at_1(&sweep, |inst, rng| {
        let mut idx = NearNeighborIndex::build_dynamic(
            &BitSampling::new(sweep.d),
            measures::relative_hamming(sweep.d),
            sweep.r2_rel,
            BitStore::with_dim(sweep.d),
            inst.points.len(),
            sweep.p1(),
            sweep.p2(),
            FACTOR,
            rng,
        );
        for p in &inst.points {
            idx.insert(p);
        }
        idx.compact();
        let hit = idx.query(&inst.query).0;
        assert_eq!(
            hit, static_answers[run],
            "run {run}: dynamic path diverged from the static build"
        );
        run += 1;
        hit
    });

    assert!(
        dynamic_recall >= MIN_RECALL,
        "dynamic recall@1 = {dynamic_recall}"
    );
    assert_eq!(
        dynamic_recall, static_recall,
        "identical randomness must give identical recall"
    );
}
