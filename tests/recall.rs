//! Statistical recall@1 checks for [`NearNeighborIndex`] on
//! planted-neighbor data, run through the shared `tests/common` harness
//! against the static, dynamic (insert-then-compact), and sharded build
//! paths.
//!
//! All paths consume identical randomness, so beyond clearing the recall
//! bar the dynamic and sharded paths must reproduce the static path's
//! answers run for run — for the sharded path, at every shard count.

mod common;

use common::{recall_at_1, RecallSweep};
use dsh_core::points::BitStore;
use dsh_hamming::BitSampling;
use dsh_index::{measures, NearNeighborIndex};

const FACTOR: f64 = 2.0;

/// Minimum acceptable recall@1: each run succeeds with constant
/// probability well above 1/2 (factor 2.0 boosts the standard guarantee),
/// so 60% over 20 runs leaves a wide flake margin while still catching a
/// broken index, which lands near zero.
const MIN_RECALL: f64 = 0.6;

#[test]
fn static_near_neighbor_recall_clears_the_bar() {
    let sweep = RecallSweep::standard();
    let recall = recall_at_1(&sweep, |inst, rng| {
        let idx = NearNeighborIndex::build(
            &BitSampling::new(sweep.d),
            measures::relative_hamming(sweep.d),
            sweep.r2_rel,
            BitStore::from(inst.points.clone()),
            sweep.p1(),
            sweep.p2(),
            FACTOR,
            rng,
        );
        idx.query(&inst.query).0
    });
    assert!(recall >= MIN_RECALL, "static recall@1 = {recall}");
}

#[test]
fn dynamic_near_neighbor_recall_matches_static_run_for_run() {
    let sweep = RecallSweep::standard();
    let mut static_answers = Vec::new();
    let static_recall = recall_at_1(&sweep, |inst, rng| {
        let idx = NearNeighborIndex::build(
            &BitSampling::new(sweep.d),
            measures::relative_hamming(sweep.d),
            sweep.r2_rel,
            BitStore::from(inst.points.clone()),
            sweep.p1(),
            sweep.p2(),
            FACTOR,
            rng,
        );
        let hit = idx.query(&inst.query).0;
        static_answers.push(hit);
        hit
    });

    let mut run = 0;
    let dynamic_recall = recall_at_1(&sweep, |inst, rng| {
        let mut idx = NearNeighborIndex::build_dynamic(
            &BitSampling::new(sweep.d),
            measures::relative_hamming(sweep.d),
            sweep.r2_rel,
            BitStore::with_dim(sweep.d),
            inst.points.len(),
            sweep.p1(),
            sweep.p2(),
            FACTOR,
            rng,
        );
        for p in &inst.points {
            idx.insert(p).unwrap();
        }
        idx.compact();
        let hit = idx.query(&inst.query).0;
        assert_eq!(
            hit, static_answers[run],
            "run {run}: dynamic path diverged from the static build"
        );
        run += 1;
        hit
    });

    assert!(
        dynamic_recall >= MIN_RECALL,
        "dynamic recall@1 = {dynamic_recall}"
    );
    assert_eq!(
        dynamic_recall, static_recall,
        "identical randomness must give identical recall"
    );
}

#[test]
fn sharded_near_neighbor_recall_matches_static_run_for_run() {
    let sweep = RecallSweep::standard();
    let mut static_answers = Vec::new();
    let static_recall = recall_at_1(&sweep, |inst, rng| {
        let idx = NearNeighborIndex::build(
            &BitSampling::new(sweep.d),
            measures::relative_hamming(sweep.d),
            sweep.r2_rel,
            BitStore::from(inst.points.clone()),
            sweep.p1(),
            sweep.p2(),
            FACTOR,
            rng,
        );
        let hit = idx.query(&inst.query).0;
        static_answers.push(hit);
        hit
    });
    assert!(
        static_recall >= MIN_RECALL,
        "static recall@1 = {static_recall}"
    );

    // The sharded path is grown online (insert + seal + compact) across
    // 1/2/8 shards; every run must report the same point as the static
    // build, so the recall is run-for-run identical — not merely equal in
    // aggregate.
    for shards in [1usize, 2, 8] {
        let mut run = 0;
        let sharded_recall = recall_at_1(&sweep, |inst, rng| {
            let mut idx = NearNeighborIndex::build_sharded(
                &BitSampling::new(sweep.d),
                measures::relative_hamming(sweep.d),
                sweep.r2_rel,
                BitStore::with_dim(sweep.d),
                shards,
                inst.points.len(),
                sweep.p1(),
                sweep.p2(),
                FACTOR,
                rng,
            );
            for (i, p) in inst.points.iter().enumerate() {
                idx.insert(p).unwrap();
                if (i + 1) % 100 == 0 {
                    idx.seal();
                }
            }
            idx.compact();
            let hit = idx.query(&inst.query).0;
            assert_eq!(
                hit, static_answers[run],
                "run {run}: sharded path ({shards} shards) diverged from the static build"
            );
            run += 1;
            hit
        });
        assert_eq!(
            sharded_recall, static_recall,
            "identical randomness must give identical recall ({shards} shards)"
        );
    }
}
