//! Integration test: the §6.4 privacy protocol end to end, including the
//! (eps, delta) guarantees and the leakage accounting.

use dsh::prelude::*;
use dsh_data::hamming_data::point_at_distance;
use dsh_hamming::BitSampling;
use dsh_math::rng::seeded;
use dsh_privacy::DistanceEstimationProtocol;

#[test]
fn close_yes_far_no() {
    let d = 512;
    let r_rel: f64 = 0.05;
    let k = 40usize;
    let fam = Power::new(BitSampling::new(d), k);
    let f_min = (1.0 - r_rel).powi(k as i32);
    let n = DistanceEstimationProtocol::<BitVector>::required_hashes(f_min, 0.02);
    let mut rng = seeded(0x1E5790);
    let proto = DistanceEstimationProtocol::new(&fam, n, 20, &mut rng);

    let runs = 150;
    let mut fneg = 0;
    let mut fpos = 0;
    for _ in 0..runs {
        let x = BitVector::random(&mut rng, d);
        let close = point_at_distance(&mut rng, &x, (r_rel * d as f64) as usize);
        let far = point_at_distance(&mut rng, &x, (4.0 * r_rel * d as f64) as usize);
        if !proto.run(&x, &close).answer {
            fneg += 1;
        }
        if proto.run(&x, &far).answer {
            fpos += 1;
        }
    }
    assert!(fneg <= runs / 10, "false negatives {fneg}/{runs}");
    assert!(fpos <= runs / 10, "false positives {fpos}/{runs}");
}

#[test]
fn leakage_grows_with_intersection_only() {
    let d = 128;
    let fam = BitSampling::new(d);
    let mut rng = seeded(0x1E5791);
    let proto = DistanceEstimationProtocol::new(&fam, 300, 10, &mut rng);
    let x = BitVector::random(&mut rng, d);
    let far = x.complement();
    let out_far = proto.run(&x, &far);
    // Complement: bit-sampling never collides, zero leakage.
    assert_eq!(out_far.intersection_size, 0);
    assert_eq!(out_far.leakage_bits, 0.0);
    assert!(!out_far.answer);
    // Identical: full intersection.
    let out_same = proto.run(&x, &x);
    assert_eq!(out_same.intersection_size, 300);
    assert!(out_same.leakage_bits > 0.0);
}

#[test]
fn digest_truncation_does_not_change_answers_materially() {
    // 24-bit digests vs 8-bit digests: spurious matches at 8 bits occur
    // at rate 2^-8 per pair; with N = 200 pairs expect < 1 extra match.
    let d = 256;
    let k = 30usize;
    let fam = Power::new(BitSampling::new(d), k);
    let mut rng = seeded(0x1E5792);
    let wide = DistanceEstimationProtocol::new(&fam, 200, 24, &mut rng);
    let narrow = DistanceEstimationProtocol::new(&fam, 200, 8, &mut rng);
    let mut disagreements = 0;
    for _ in 0..100 {
        let x = BitVector::random(&mut rng, d);
        let far = point_at_distance(&mut rng, &x, d / 2);
        let a = wide.run(&x, &far).answer;
        let b = narrow.run(&x, &far).answer;
        if a != b {
            disagreements += 1;
        }
    }
    assert!(
        disagreements <= 60,
        "digest width changed outcomes too often"
    );
}
