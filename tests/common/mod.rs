//! Shared statistical test harnesses for the integration suite.
//!
//! The recall harness runs a seeded sweep of planted-neighbor instances
//! and reports the fraction of runs in which the index under test
//! returned a point within the target radius — the average-based style
//! the repo uses for every probabilistic guarantee (a single run of a
//! constant-success-probability structure proves nothing; two dozen
//! seeded runs pin the success rate without flakiness).
//!
//! The same harness serves every build path — static, dynamic
//! (insert-then-compact), and sharded — because the closure receives the
//! run's RNG positioned right after instance generation: paths that
//! consume identical randomness (they all sample their `(h, g)` pairs
//! the same way) must reproduce each other's answers run for run, which
//! `tests/recall.rs` asserts on top of the recall bar itself.

#![allow(dead_code)] // each integration-test binary uses a subset

use dsh_core::points::hamming;
use dsh_data::hamming_data::{planted_hamming_instance, PlantedHammingInstance};
use dsh_math::rng::seeded;
use rand::Rng;

/// Parameters of one recall@1 sweep over planted Hamming instances.
pub struct RecallSweep {
    /// Base RNG seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Number of independent instances.
    pub runs: u64,
    /// Points per instance.
    pub n: usize,
    /// Hamming dimension.
    pub d: usize,
    /// Planted neighbor distance (absolute bits).
    pub r_planted: usize,
    /// Reporting radius `r2` (relative), the recall target.
    pub r2_rel: f64,
}

impl RecallSweep {
    /// The standard sweep: a planted neighbor at relative distance 0.05
    /// in `d = 256`, reported within `r2 = 0.25`, over 20 seeded runs.
    pub fn standard() -> Self {
        RecallSweep {
            seed: 0x4eca11,
            runs: 20,
            n: 250,
            d: 256,
            r_planted: 12,
            r2_rel: 0.25,
        }
    }

    /// CPF value at the planted distance for a bit-sampling family
    /// (`p1 = 1 - r1`), the value index builds derive `L` from.
    pub fn p1(&self) -> f64 {
        1.0 - self.r_planted as f64 / self.d as f64
    }

    /// CPF value at the reporting radius (`p2 = 1 - r2`).
    pub fn p2(&self) -> f64 {
        1.0 - self.r2_rel
    }
}

/// Run the sweep: `build_and_query` receives each planted instance plus
/// the run's RNG (positioned right after instance generation, so index
/// builds in static and dynamic harness closures consume identical
/// randomness), and returns the reported point id, if any.
///
/// Every reported point is checked against the reporting radius (a
/// violation fails the test immediately); the returned recall@1 is the
/// fraction of runs that reported a valid point.
pub fn recall_at_1<F>(sweep: &RecallSweep, mut build_and_query: F) -> f64
where
    F: FnMut(&PlantedHammingInstance, &mut dyn Rng) -> Option<usize>,
{
    assert!(sweep.runs > 0);
    let mut hits = 0u64;
    for run in 0..sweep.runs {
        let mut rng = seeded(sweep.seed + run);
        let inst = planted_hamming_instance(&mut rng, sweep.n, sweep.d, sweep.r_planted);
        if let Some(i) = build_and_query(&inst, &mut rng) {
            let rel =
                hamming(inst.points[i].as_blocks(), inst.query.as_blocks()) as f64 / sweep.d as f64;
            assert!(
                rel <= sweep.r2_rel,
                "run {run}: reported point at relative distance {rel} > r2 = {}",
                sweep.r2_rel
            );
            hits += 1;
        }
    }
    hits as f64 / sweep.runs as f64
}
