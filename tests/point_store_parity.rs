//! Integration test for the flat point-storage layer: every index
//! front-end built from a flat store ([`BitStore`] / [`DenseStore`]) must
//! return bit-identical candidate ids and `QueryStats` to the same build
//! from `Vec<P>` — for every build and batch worker-thread count. Hashing
//! and verification read rows either way, so parity holds by
//! construction; these tests pin it against regressions.

use dsh_core::points::{BitStore, BitVector, DenseStore, DenseVector};
use dsh_data::{hamming_data, sphere_data};
use dsh_hamming::BitSampling;
use dsh_index::{
    measures, AnnulusIndex, AnnulusSpec, HashTableIndex, HyperplaneIndex, NearNeighborIndex,
    RangeReportingIndex, SphereAnnulusIndex,
};
use dsh_math::rng::seeded;

fn hamming_workload(seed: u64, n: usize, nq: usize, d: usize) -> (Vec<BitVector>, Vec<BitVector>) {
    let mut rng = seeded(seed);
    let points = hamming_data::uniform_hamming(&mut rng, n, d);
    let queries: Vec<BitVector> = points[..nq / 2]
        .iter()
        .cloned()
        .chain((0..nq - nq / 2).map(|_| BitVector::random(&mut rng, d)))
        .collect();
    (points, queries)
}

#[test]
fn hash_table_store_and_vec_builds_are_query_identical() {
    let d = 128;
    let (points, queries) = hamming_workload(0x570A, 350, 24, d);
    for build_threads in [1usize, 2, 8] {
        let vec_idx = HashTableIndex::build_with_threads(
            &BitSampling::new(d),
            points.clone(),
            14,
            &mut seeded(0x570B),
            build_threads,
        );
        let store_idx = HashTableIndex::build_with_threads(
            &BitSampling::new(d),
            BitStore::from(points.clone()),
            14,
            &mut seeded(0x570B),
            build_threads,
        );
        for limit in [None, Some(9)] {
            let from_vec: Vec<_> = queries
                .iter()
                .map(|q| vec_idx.candidates(q, limit))
                .collect();
            let from_store: Vec<_> = queries
                .iter()
                .map(|q| store_idx.candidates(q, limit))
                .collect();
            assert_eq!(
                from_vec, from_store,
                "store/vec divergence (build_threads {build_threads}, limit {limit:?})"
            );
            // Batched path, with the queries themselves held either as
            // owned vectors or as a flat store, across batch thread counts.
            let query_store = BitStore::from(queries.clone());
            for qthreads in [1usize, 3, 8] {
                assert_eq!(
                    from_vec,
                    store_idx.candidates_batch_with_threads(&queries, limit, qthreads),
                    "owned-query batch diverged (qthreads {qthreads})"
                );
                assert_eq!(
                    from_vec,
                    store_idx.candidates_batch_with_threads(&query_store, limit, qthreads),
                    "store-query batch diverged (qthreads {qthreads})"
                );
            }
        }
        // Rows of the store must be the packed blocks of the owned points.
        for (i, p) in points.iter().enumerate() {
            assert_eq!(store_idx.point(i), p.as_blocks());
        }
    }
}

#[test]
fn generator_store_and_vec_paths_index_identically() {
    // The same RNG stream drives both generators, so a store-generated
    // dataset indexes exactly like the Vec-generated one.
    let d = 96;
    let vec_points = hamming_data::uniform_hamming(&mut seeded(0x570C), 200, d);
    let store_points = hamming_data::uniform_hamming_store(&mut seeded(0x570C), 200, d);
    let queries = hamming_data::uniform_hamming(&mut seeded(0x570D), 16, d);
    let vec_idx = HashTableIndex::build(&BitSampling::new(d), vec_points, 8, &mut seeded(0x570E));
    let store_idx =
        HashTableIndex::build(&BitSampling::new(d), store_points, 8, &mut seeded(0x570E));
    for q in &queries {
        assert_eq!(vec_idx.candidates(q, None), store_idx.candidates(q, None));
    }
}

#[test]
fn near_neighbor_front_end_parity() {
    let d = 256;
    let mut rng = seeded(0x570F);
    let inst = hamming_data::planted_hamming_instance(&mut rng, 250, d, 12);
    let queries: Vec<BitVector> = std::iter::once(inst.query.clone())
        .chain((0..11).map(|_| BitVector::random(&mut rng, d)))
        .collect();
    let vec_idx = NearNeighborIndex::build(
        &BitSampling::new(d),
        measures::relative_hamming(d),
        0.25,
        inst.points.clone(),
        0.95,
        0.75,
        2.0,
        &mut seeded(0x5710),
    );
    let store_idx = NearNeighborIndex::build(
        &BitSampling::new(d),
        measures::relative_hamming(d),
        0.25,
        BitStore::from(inst.points),
        0.95,
        0.75,
        2.0,
        &mut seeded(0x5710),
    );
    let sequential: Vec<_> = queries.iter().map(|q| vec_idx.query(q)).collect();
    assert_eq!(
        sequential,
        queries
            .iter()
            .map(|q| store_idx.query(q))
            .collect::<Vec<_>>()
    );
    for threads in [1usize, 4] {
        assert_eq!(
            sequential,
            store_idx.query_batch_with_threads(&queries, threads)
        );
    }
}

#[test]
fn annulus_and_range_reporting_front_end_parity() {
    let d = 128;
    let (points, queries) = hamming_workload(0x5711, 220, 18, d);
    let annulus_vec = AnnulusIndex::build(
        &BitSampling::new(d),
        measures::relative_hamming(d),
        (0.0, 0.3),
        points.clone(),
        10,
        &mut seeded(0x5712),
    );
    let annulus_store = AnnulusIndex::build(
        &BitSampling::new(d),
        measures::relative_hamming(d),
        (0.0, 0.3),
        BitStore::from(points.clone()),
        10,
        &mut seeded(0x5712),
    );
    let sequential: Vec<_> = queries.iter().map(|q| annulus_vec.query(q)).collect();
    for threads in [1usize, 3] {
        assert_eq!(
            sequential,
            annulus_store.query_batch_with_threads(&queries, threads)
        );
    }

    let fam = dsh_core::combinators::Power::new(BitSampling::new(d), 8);
    let rr_vec = RangeReportingIndex::build(
        &fam,
        measures::relative_hamming(d),
        0.05,
        0.2,
        points.clone(),
        25,
        &mut seeded(0x5713),
    );
    let rr_store = RangeReportingIndex::build(
        &fam,
        measures::relative_hamming(d),
        0.05,
        0.2,
        BitStore::from(points),
        25,
        &mut seeded(0x5713),
    );
    let sequential: Vec<_> = queries.iter().map(|q| rr_vec.query(q)).collect();
    assert_eq!(
        sequential,
        queries
            .iter()
            .map(|q| rr_store.query(q))
            .collect::<Vec<_>>()
    );
    for threads in [1usize, 5] {
        assert_eq!(
            sequential,
            rr_store.query_batch_with_threads(&queries, threads)
        );
    }
}

#[test]
fn sphere_front_ends_parity() {
    let d = 48;
    let spec = AnnulusSpec::widened(0.55, 0.65, 2.5);
    let mut rng = seeded(0x5714);
    let inst = sphere_data::planted_sphere_instance(&mut rng, 180, d, 0.6);
    let queries: Vec<DenseVector> = std::iter::once(inst.query.clone())
        .chain((0..7).map(|_| DenseVector::random_unit(&mut rng, d)))
        .collect();

    let sa_vec =
        SphereAnnulusIndex::build(inst.points.clone(), d, spec, 1.4, 1.5, &mut seeded(0x5715));
    let sa_store = SphereAnnulusIndex::build(
        DenseStore::from(inst.points.clone()),
        d,
        spec,
        1.4,
        1.5,
        &mut seeded(0x5715),
    );
    let sequential: Vec<_> = queries.iter().map(|q| sa_vec.query(q)).collect();
    assert_eq!(
        sequential,
        queries
            .iter()
            .map(|q| sa_store.query(q))
            .collect::<Vec<_>>()
    );
    assert_eq!(sequential, sa_store.query_batch(&queries));
    assert_eq!(
        sequential,
        sa_store.query_batch(&DenseStore::from(queries.clone()))
    );

    let hp_vec = HyperplaneIndex::build(inst.points.clone(), d, 1.4, 0.4, 1.5, &mut seeded(0x5716));
    let hp_store = HyperplaneIndex::build(
        DenseStore::from(inst.points),
        d,
        1.4,
        0.4,
        1.5,
        &mut seeded(0x5716),
    );
    let sequential: Vec<_> = queries.iter().map(|q| hp_vec.query(q)).collect();
    assert_eq!(
        sequential,
        queries
            .iter()
            .map(|q| hp_store.query(q))
            .collect::<Vec<_>>()
    );
    assert_eq!(sequential, hp_store.query_batch(&queries));
}
